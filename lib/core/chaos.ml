module Workloads = Hsgc_objgraph.Workloads
module Coprocessor = Hsgc_coproc.Coprocessor
module Verify = Hsgc_heap.Verify
module Injector = Hsgc_fault.Injector
module Domain_pool = Hsgc_sim.Domain_pool
module Table = Hsgc_util.Table

type klass = [ `Delay | `Corruption ]

type point = {
  klass : klass;
  intensity : float;
  workload : string;
  n_cores : int;
  seed : int;
}

type classification =
  | Clean
  | Detected of string
  | Silent of int
  | Hung of string

type point_result = {
  point : point;
  attempt : int;
  terminated : bool;
  classification : classification;
  faults : int;
  corruptions : int;
  cycles : int;
  baseline_cycles : int;
}

type summary = {
  results : point_result list;
  delay_points : int;
  delay_terminated : int;
  delay_clean : int;
  corruption_points : int;
  corruption_armed : int;
  corruption_detected : int;
  corruption_silent : int;
  mean_delay_overhead : float;
}

let default_intensities = function
  | `Delay -> [ 0.02; 0.1; 0.3 ]
  | `Corruption -> [ 0.002; 0.01; 0.05 ]

let default_matrix ?workloads ?(cores = [ 8 ])
    ?(intensities = default_intensities) ?(seed = 42) () =
  let names =
    match workloads with
    | Some ws -> ws
    | None -> List.map (fun w -> w.Workloads.name) Workloads.all
  in
  List.concat_map
    (fun klass ->
      List.concat_map
        (fun intensity ->
          List.concat_map
            (fun workload ->
              List.map
                (fun n_cores -> { klass; intensity; workload; n_cores; seed })
                cores)
            names)
        (intensities klass))
    [ `Delay; `Corruption ]

let find_workload name =
  match Workloads.find name with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Chaos: unknown workload %S" name)

(* The injector seed must differ from the workload seed (independent
   streams), vary across the matrix (so equal-seed points explore
   different fault patterns), and move deterministically on retry. *)
let injector_seed p ~attempt =
  (p.seed * 1_000_003)
  + (int_of_float (p.intensity *. 1_000_000.0) * 97)
  + (p.n_cores * 13)
  + (match p.klass with `Delay -> 0 | `Corruption -> 1)
  + (attempt * 7919)

let oracle_snapshot ~scale ~seed w =
  let heap = Workloads.build_heap ~scale ~seed w in
  ignore (Cheney_seq.collect heap);
  Verify.snapshot heap

let run_point ?(scale = 1.0) ?(attempt = 0) p =
  let w = find_workload p.workload in
  (* Fault-free reference: collection length for the overhead figure and
     the cycle budget of the faulted run. *)
  let baseline_cycles =
    let heap = Workloads.build_heap ~scale ~seed:p.seed w in
    (Coprocessor.collect (Coprocessor.config ~n_cores:p.n_cores ()) heap)
      .Coprocessor.total_cycles
  in
  (* Generous but finite: delay faults at the clamped maximum intensity
     slow acceptance by at most ~20x (p <= 0.95) plus bounded extra
     latency, so 50x + slack means a budget trip is a genuine hang. *)
  let budget = (50 * baseline_cycles) + 1_000_000 in
  let spec =
    Injector.of_class p.klass
      ~seed:(injector_seed p ~attempt)
      ~intensity:p.intensity ()
  in
  let cfg =
    Coprocessor.config ~faults:spec ~cycle_budget:budget ~n_cores:p.n_cores ()
  in
  let heap = Workloads.build_heap ~scale ~seed:p.seed w in
  let pre = Verify.snapshot heap in
  let finish ~terminated ~classification ~faults ~corruptions ~cycles =
    {
      point = p;
      attempt;
      terminated;
      classification;
      faults;
      corruptions;
      cycles;
      baseline_cycles;
    }
  in
  match Coprocessor.collect cfg heap with
  | stats ->
    let faults = stats.Coprocessor.faults_injected in
    let corruptions = stats.Coprocessor.corruptions_injected in
    let cycles = stats.Coprocessor.total_cycles in
    let verdict = Verify.check_collection ~pre heap in
    let classification =
      match (p.klass, verdict) with
      | `Corruption, Error f ->
        Detected (Format.asprintf "%a" Verify.pp_failure f)
      | `Corruption, Ok () ->
        if corruptions = 0 then Clean else Silent corruptions
      | `Delay, Error f ->
        (* A delay-class fault changed the result graph: a metamorphic
           violation, reported like a hang (it is a microprogram bug). *)
        Hung (Format.asprintf "verification: %a" Verify.pp_failure f)
      | `Delay, Ok () ->
        (* Oracle cross-check: the faulted run must match the sequential
           Cheney collector on the same initial heap. *)
        if
          Verify.equal_snapshot (Verify.snapshot heap)
            (oracle_snapshot ~scale ~seed:p.seed w)
        then Clean
        else Hung "oracle mismatch: coprocessor result differs from Cheney"
    in
    finish ~terminated:true ~classification ~faults ~corruptions ~cycles
  | exception Coprocessor.Stall_diagnosis d ->
    let reason = Format.asprintf "%a" Coprocessor.pp_diagnosis d in
    let classification =
      match p.klass with
      | `Delay -> Hung reason
      | `Corruption -> Detected reason
    in
    finish ~terminated:false ~classification ~faults:0 ~corruptions:0 ~cycles:0
  | exception Coprocessor.Heap_overflow ->
    let classification =
      match p.klass with
      | `Delay -> Hung "heap overflow"
      | `Corruption -> Detected "heap overflow"
    in
    finish ~terminated:false ~classification ~faults:0 ~corruptions:0 ~cycles:0
  | exception Coprocessor.Simulation_diverged msg ->
    let classification =
      match p.klass with
      | `Delay -> Hung ("diverged: " ^ msg)
      | `Corruption -> Detected ("diverged: " ^ msg)
    in
    finish ~terminated:false ~classification ~faults:0 ~corruptions:0 ~cycles:0

let summarize results =
  let delay, corruption =
    List.partition (fun r -> r.point.klass = `Delay) results
  in
  let terminated = List.filter (fun r -> r.terminated) delay in
  let clean = List.filter (fun r -> r.classification = Clean) delay in
  let armed = List.filter (fun r -> r.corruptions > 0) corruption in
  let detected =
    List.filter
      (fun r -> match r.classification with Detected _ -> true | _ -> false)
      corruption
  in
  let silent =
    List.filter
      (fun r -> match r.classification with Silent _ -> true | _ -> false)
      corruption
  in
  let overheads =
    List.filter_map
      (fun r ->
        if r.terminated && r.baseline_cycles > 0 then
          Some
            ((float_of_int r.cycles /. float_of_int r.baseline_cycles) -. 1.0)
        else None)
      delay
  in
  {
    results;
    delay_points = List.length delay;
    delay_terminated = List.length terminated;
    delay_clean = List.length clean;
    corruption_points = List.length corruption;
    corruption_armed = List.length armed;
    corruption_detected = List.length detected;
    corruption_silent = List.length silent;
    mean_delay_overhead =
      (match overheads with
      | [] -> 0.0
      | _ ->
        List.fold_left ( +. ) 0.0 overheads
        /. float_of_int (List.length overheads));
  }

let run ?scale ?(jobs = 1) ?(on_error = Domain_pool.Skip) points =
  let jobs = Domain_pool.resolve_jobs ~limit:(List.length points) jobs in
  let outcomes =
    Domain_pool.map_list_policy ~on_error ~jobs
      (fun ~attempt p -> run_point ?scale ~attempt p)
      points
  in
  (* A point that kept failing even under the policy still must not sink
     the campaign: it becomes a synthetic Hung result. *)
  let results =
    List.map2
      (fun p -> function
        | Domain_pool.Done r -> r
        | Domain_pool.Failed { attempts; error } ->
          {
            point = p;
            attempt = attempts - 1;
            terminated = false;
            classification = Hung ("harness: " ^ Printexc.to_string error);
            faults = 0;
            corruptions = 0;
            cycles = 0;
            baseline_cycles = 0;
          })
      points outcomes
  in
  summarize results

let klass_name = function `Delay -> "delay" | `Corruption -> "corruption"

let classification_label = function
  | Clean -> "clean"
  | Detected _ -> "detected"
  | Silent n -> Printf.sprintf "SILENT(%d)" n
  | Hung _ -> "HUNG"

let rate num den =
  if den = 0 then "n/a" else Table.pct (float_of_int num /. float_of_int den)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render s =
  let header =
    [
      "class"; "intensity"; "workload"; "cores"; "outcome"; "faults";
      "corruptions"; "cycles"; "overhead";
    ]
  in
  let rows =
    List.map
      (fun r ->
        [
          klass_name r.point.klass;
          Printf.sprintf "%g" r.point.intensity;
          r.point.workload;
          string_of_int r.point.n_cores;
          classification_label r.classification;
          string_of_int r.faults;
          string_of_int r.corruptions;
          (if r.terminated then string_of_int r.cycles else "-");
          (if r.terminated && r.baseline_cycles > 0 then
             Printf.sprintf "%+.1f%%"
               (100.0
               *. ((float_of_int r.cycles /. float_of_int r.baseline_cycles)
                  -. 1.0))
           else "-");
        ])
      s.results
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Chaos campaign (fault class x intensity x workload). Delay-class\n\
     faults only move events in time: every run must terminate and verify\n\
     (vs. snapshot isomorphism and the Cheney oracle). Corruption-class\n\
     faults flip copied bits: every armed run must be detected.\n\n";
  Buffer.add_string buf (Table.render ~header ~rows);
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Printf.sprintf "delay:      %d points, termination %s, clean verification %s\n"
       s.delay_points
       (rate s.delay_terminated s.delay_points)
       (rate s.delay_clean s.delay_points));
  Buffer.add_string buf
    (Printf.sprintf
       "corruption: %d points (%d armed), detection %s, silent passes %d\n"
       s.corruption_points s.corruption_armed
       (rate s.corruption_detected s.corruption_armed)
       s.corruption_silent);
  Buffer.add_string buf
    (Printf.sprintf "delay overhead: %+.1f%% mean collection-cycle cost\n"
       (100.0 *. s.mean_delay_overhead));
  Buffer.contents buf

(* --- interrupt campaign ------------------------------------------- *)

(* The crash-safety counterpart of the fault campaign: instead of
   perturbing the machine, kill the *process model* at a deterministic
   random cycle mid-collection, resume from the latest checkpoint, and
   demand the resumed run is indistinguishable from an uninterrupted
   one — same verify result, same total cycles, same per-core counters,
   same trace digest. A corrupt-detection leg flips one byte in every
   section payload of the kill-time snapshot and demands the loader
   refuses each mutant. *)
module Interrupt = struct
  module Tracer = Hsgc_obs.Tracer
  module Rng = Hsgc_util.Rng
  module Checkpoint = Hsgc_checkpoint.Checkpoint

  type point = {
    workload : string;
    n_cores : int;
    partitions : int;
    seed : int;
    draw : int;
  }

  type point_result = {
    point : point;
    total_cycles : int;
    kill_cycle : int;
    checkpoints : int;
    equivalent : bool;
    mismatch : string option;
    corrupt_flips : int;
    corrupt_caught : int;
  }

  type summary = {
    results : point_result list;
    points : int;
    equivalent : int;
    corrupt_flips : int;
    corrupt_caught : int;
  }

  (* Modest tracer so a campaign of points (possibly across domains)
     stays cheap; both runs of a point use the same capacity, so drops
     are identical and the digest comparison is exact. *)
  let obs_capacity = 1 lsl 15
  let obs_interval = 64

  let default_matrix ?workloads ?(cores = [ 8 ]) ?(partitions = [ 1; 4 ])
      ?(draws = 1) ?(seed = 42) () =
    let names =
      match workloads with
      | Some ws -> ws
      | None -> List.map (fun w -> w.Workloads.name) Workloads.all
    in
    List.concat_map
      (fun workload ->
        List.concat_map
          (fun n_cores ->
            List.concat_map
              (fun parts ->
                List.init draws (fun draw ->
                    { workload; n_cores; partitions = parts; seed; draw }))
              partitions)
          cores)
      names

  let rm_rf dir =
    (match Sys.readdir dir with
    | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries
    | exception Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()

  (* One byte flipped anywhere in a section payload must be refused by
     that section's CRC. Returns (flippable sections, flips caught). *)
  let corrupt_check path =
    let raw = In_channel.with_open_bin path In_channel.input_all in
    let flippable =
      List.filter (fun (_, _, len) -> len > 0) (Checkpoint.payload_ranges path)
    in
    let caught =
      List.fold_left
        (fun acc (_name, off, len) ->
          let b = Bytes.of_string raw in
          let i = off + (len / 2) in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
          match Checkpoint.of_string (Bytes.to_string b) with
          | _ -> acc
          | exception Checkpoint.Corrupt _ -> acc + 1)
        0 flippable
    in
    (List.length flippable, caught)

  let run_point ?(scale = 1.0) p =
    let w = find_workload p.workload in
    let cfg = Coprocessor.config ~n_cores:p.n_cores () in
    let mk_obs () =
      let o =
        Tracer.create ~capacity:obs_capacity ~interval:obs_interval
          ~n_cores:p.n_cores ()
      in
      Tracer.enable o;
      o
    in
    (* Uninterrupted reference run. Sequential stepping is fine — the
       BSP schedule is bit-identical by construction, so the resumed
       run may step under any partition count. *)
    let base_stats, base_ok, base_digest =
      let heap = Workloads.build_heap ~scale ~seed:p.seed w in
      let pre = Verify.snapshot heap in
      let obs = mk_obs () in
      let stats = Coprocessor.collect ~obs cfg heap in
      (stats, Verify.check_collection ~pre heap = Ok (), Tracer.digest obs)
    in
    let total = base_stats.Coprocessor.total_cycles in
    (* Deterministic random kill cycle, strictly inside the run. *)
    let rng =
      Rng.create
        (p.seed
        + (p.draw * 7919)
        + (p.n_cores * 131)
        + (p.partitions * 31)
        + Hashtbl.hash p.workload)
    in
    let kill_cycle = 1 + Rng.int rng (total - 1) in
    (* At least one periodic checkpoint strictly before the kill, plus
       the final one written at the kill itself. *)
    let every = max 1 ((kill_cycle + 1) / 2) in
    let meta =
      {
        Resume.workload = p.workload;
        scale;
        seed = p.seed;
        partitions = p.partitions;
        obs_on = true;
        obs_capacity;
        obs_interval;
        prof_on = false;
      }
    in
    let dir = Filename.temp_dir "hsgc-interrupt" "" in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    (* The run that gets killed: checkpointing on, stopped in its
       tracks at the kill cycle (in-process stand-in for SIGINT; the CI
       resume-smoke job covers a real SIGKILL). *)
    let killed =
      let heap = Workloads.build_heap ~scale ~seed:p.seed w in
      let sim = Coprocessor.start ~obs:(mk_obs ()) cfg heap in
      Resume.drive ~every ~dir ~stop_at:kill_cycle ~partitions:p.partitions
        ~meta sim
    in
    match killed with
    | Resume.Finished _ ->
      failwith "Chaos.Interrupt: run finished before its kill cycle"
    | Resume.Stopped { checkpoint = None; _ } ->
      failwith "Chaos.Interrupt: killed run left no checkpoint"
    | Resume.Stopped { at_cycle = _; checkpoint = Some _ } ->
      let checkpoints = Array.length (Sys.readdir dir) in
      let latest =
        match Resume.latest ~dir with
        | Some f -> f
        | None -> failwith "Chaos.Interrupt: no checkpoint to resume from"
      in
      let corrupt_flips, corrupt_caught = corrupt_check latest in
      (* Resume from the latest checkpoint and run to completion. *)
      let r = Resume.resume ~path:latest () in
      let finish ~equivalent ~mismatch =
        {
          point = p;
          total_cycles = total;
          kill_cycle;
          checkpoints;
          equivalent;
          mismatch;
          corrupt_flips;
          corrupt_caught;
        }
      in
      (match
         Resume.drive ~partitions:r.Resume.meta.Resume.partitions
           ~meta:r.Resume.meta r.Resume.sim
       with
      | Resume.Stopped _ ->
        finish ~equivalent:false
          ~mismatch:(Some "resumed run stopped without a stop condition")
      | Resume.Finished (gc, _) ->
        let resumed_ok =
          Verify.check_collection ~pre:r.Resume.pre r.Resume.heap = Ok ()
        in
        let resumed_digest = Tracer.digest (Option.get r.Resume.obs) in
        let mismatch =
          if gc.Coprocessor.total_cycles <> total then
            Some
              (Printf.sprintf "total_cycles: resumed %d, uninterrupted %d"
                 gc.Coprocessor.total_cycles total)
          else if not (resumed_ok && base_ok) then
            Some
              (Printf.sprintf "verification: resumed %b, uninterrupted %b"
                 resumed_ok base_ok)
          else if gc.Coprocessor.per_core <> base_stats.Coprocessor.per_core
          then Some "per-core counters differ"
          else if resumed_digest <> base_digest then
            Some "trace digest differs"
          else None
        in
        finish ~equivalent:(mismatch = None) ~mismatch)

  let summarize (results : point_result list) =
    {
      results;
      points = List.length results;
      equivalent =
        List.length
          (List.filter (fun (r : point_result) -> r.equivalent) results);
      corrupt_flips =
        List.fold_left
          (fun a (r : point_result) -> a + r.corrupt_flips)
          0 results;
      corrupt_caught =
        List.fold_left
          (fun a (r : point_result) -> a + r.corrupt_caught)
          0 results;
    }

  let run ?scale ?(jobs = 1) points =
    let jobs = Domain_pool.resolve_jobs ~limit:(List.length points) jobs in
    summarize
      (Domain_pool.map_list ~jobs (fun p -> run_point ?scale p) points)

  let passed s = s.equivalent = s.points && s.corrupt_caught = s.corrupt_flips

  let render s =
    let header =
      [
        "workload"; "cores"; "parts"; "kill@"; "of"; "ckpts"; "resume";
        "corrupt";
      ]
    in
    let rows =
      List.map
        (fun r ->
          [
            r.point.workload;
            string_of_int r.point.n_cores;
            string_of_int r.point.partitions;
            string_of_int r.kill_cycle;
            string_of_int r.total_cycles;
            string_of_int r.checkpoints;
            (if r.equivalent then "identical"
             else
               Printf.sprintf "MISMATCH: %s"
                 (Option.value r.mismatch ~default:"?"));
            Printf.sprintf "%d/%d" r.corrupt_caught r.corrupt_flips;
          ])
        s.results
    in
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      "Interrupt campaign. Each point kills a checkpointing run at a\n\
       deterministic random cycle, resumes from the latest snapshot and\n\
       demands the resumed final state (verify result, cycle count,\n\
       per-core counters, trace digest) equals an uninterrupted run's;\n\
       the corrupt leg flips one byte per snapshot section and demands\n\
       every flip is refused by its CRC.\n\n";
    Buffer.add_string buf (Table.render ~header ~rows);
    Buffer.add_string buf "\n";
    Buffer.add_string buf
      (Printf.sprintf "resume equivalence:  %s (%d/%d points)\n"
         (rate s.equivalent s.points)
         s.equivalent s.points);
    Buffer.add_string buf
      (Printf.sprintf "corrupt detection:   %s (%d/%d flips refused)\n"
         (rate s.corrupt_caught s.corrupt_flips)
         s.corrupt_caught s.corrupt_flips);
    Buffer.contents buf

  (* The JSON object that BENCH_chaos.json records under "interrupt"
     (also the standalone payload of [gcsim chaos --interrupt -o]). The
     acceptance gates: both rates must be 1.0. *)
  let to_json s =
    let point_json r =
      Printf.sprintf
        {|    {"workload": "%s", "cores": %d, "partitions": %d, "seed": %d, "draw": %d, "total_cycles": %d, "kill_cycle": %d, "checkpoints": %d, "equivalent": %b, "mismatch": %s, "corrupt_flips": %d, "corrupt_caught": %d}|}
        (json_escape r.point.workload)
        r.point.n_cores r.point.partitions r.point.seed r.point.draw
        r.total_cycles r.kill_cycle r.checkpoints r.equivalent
        (match r.mismatch with
        | None -> "null"
        | Some m -> Printf.sprintf "\"%s\"" (json_escape m))
        r.corrupt_flips r.corrupt_caught
    in
    Printf.sprintf
      {|{
  "interrupt_points": %d,
  "interrupt_equivalent": %d,
  "resume_equivalence_rate": %.4f,
  "corrupt_checks": %d,
  "corrupt_detected": %d,
  "corrupt_detection_rate": %.4f,
  "points": [
%s
  ]
}|}
      s.points s.equivalent
      (if s.points = 0 then 1.0
       else float_of_int s.equivalent /. float_of_int s.points)
      s.corrupt_flips s.corrupt_caught
      (if s.corrupt_flips = 0 then 1.0
       else float_of_int s.corrupt_caught /. float_of_int s.corrupt_flips)
      (String.concat ",\n" (List.map point_json s.results))
end

let to_json ?interrupt s =
  let point_json r =
    Printf.sprintf
      {|    {"class": "%s", "intensity": %g, "workload": "%s", "cores": %d, "seed": %d, "attempt": %d, "terminated": %b, "outcome": "%s", "faults": %d, "corruptions": %d, "cycles": %d, "baseline_cycles": %d}|}
      (klass_name r.point.klass) r.point.intensity
      (json_escape r.point.workload)
      r.point.n_cores r.point.seed r.attempt r.terminated
      (json_escape (classification_label r.classification))
      r.faults r.corruptions r.cycles r.baseline_cycles
  in
  Printf.sprintf
    {|{
  "benchmark": "hsgc chaos campaign",
  "delay_points": %d,
  "delay_terminated": %d,
  "delay_clean": %d,
  "termination_rate": %.4f,
  "clean_verification_rate": %.4f,
  "corruption_points": %d,
  "corruption_armed": %d,
  "corruption_detected": %d,
  "corruption_silent": %d,
  "detection_rate": %.4f,
  "mean_delay_overhead": %.4f,%s
  "points": [
%s
  ]
}
|}
    s.delay_points s.delay_terminated s.delay_clean
    (if s.delay_points = 0 then 1.0
     else float_of_int s.delay_terminated /. float_of_int s.delay_points)
    (if s.delay_points = 0 then 1.0
     else float_of_int s.delay_clean /. float_of_int s.delay_points)
    s.corruption_points s.corruption_armed s.corruption_detected
    s.corruption_silent
    (if s.corruption_armed = 0 then 1.0
     else
       float_of_int s.corruption_detected /. float_of_int s.corruption_armed)
    s.mean_delay_overhead
    (match interrupt with
    | None -> ""
    | Some i -> Printf.sprintf "\n  \"interrupt\": %s," (Interrupt.to_json i))
    (String.concat ",\n" (List.map point_json s.results))
