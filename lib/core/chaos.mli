(** Chaos campaigns: systematic fault-injection sweeps over the
    (fault class × intensity × workload) matrix.

    Each campaign point runs one collection with a seeded fault plan
    ({!Hsgc_fault.Injector}) and a reference run without faults, then
    classifies the outcome:

    - {b delay-class} points must terminate (within a cycle budget
      derived from the fault-free run) {i and} verify cleanly — against
      both {!Hsgc_heap.Verify.check_collection} and the {!Cheney_seq}
      oracle — demonstrating the microprogram is correct under
      perturbed timing (metamorphic robustness);
    - {b corruption-class} points measure the verifier's detection
      coverage: every point whose injector actually fired must be
      {e detected} (verification failure or structured simulator
      error); a corrupted run that verifies cleanly is a {e silent
      pass} — the one outcome the acceptance bar sets to zero. *)

type klass = [ `Delay | `Corruption ]

type point = {
  klass : klass;
  intensity : float;  (** per-event fault probability *)
  workload : string;
  n_cores : int;
  seed : int;  (** workload seed; the injector seed derives from it *)
}

type classification =
  | Clean  (** terminated, verified OK (and for corruption: no fault fired) *)
  | Detected of string  (** corruption caught — by the verifier or a
                            structured simulator error *)
  | Silent of int
      (** corrupted ([n] flips) yet verified clean — a verifier gap *)
  | Hung of string
      (** watchdog trip / divergence / overflow on a delay-class point —
          a timing-robustness failure of the microprogram *)

type point_result = {
  point : point;
  attempt : int;  (** retry attempt that produced this result *)
  terminated : bool;
  classification : classification;
  faults : int;  (** faults injected, both classes *)
  corruptions : int;  (** corruption-class faults injected *)
  cycles : int;  (** faulted-run collection length (0 when not terminated) *)
  baseline_cycles : int;  (** fault-free run of the same heap *)
}

type summary = {
  results : point_result list;
  delay_points : int;
  delay_terminated : int;
  delay_clean : int;  (** terminated and verified (incl. oracle) *)
  corruption_points : int;
  corruption_armed : int;  (** points whose injector fired at least once *)
  corruption_detected : int;
  corruption_silent : int;
  mean_delay_overhead : float;
      (** mean of [cycles/baseline - 1] over terminated delay points *)
}

val default_intensities : klass -> float list
(** Delay: [0.02; 0.1; 0.3]. Corruption: [0.002; 0.01; 0.05] (bit flips
    are per copied word, so small probabilities already fire often). *)

val default_matrix :
  ?workloads:string list ->
  ?cores:int list ->
  ?intensities:(klass -> float list) ->
  ?seed:int ->
  unit ->
  point list
(** The full campaign matrix: both classes × {!default_intensities} ×
    all workloads (or [workloads]) × [cores] (default [[8]]). *)

val run_point : ?scale:float -> ?attempt:int -> point -> point_result
(** Run one campaign point: fault-free baseline, then the faulted run
    under a cycle budget of 50× the baseline (plus slack), then
    classification. [attempt] (default 0) perturbs the injector seed
    deterministically — the reseed-on-retry hook for
    {!Hsgc_sim.Domain_pool.map_list_policy}. *)

val run :
  ?scale:float ->
  ?jobs:int ->
  ?on_error:Hsgc_sim.Domain_pool.error_policy ->
  point list ->
  summary
(** Run the campaign, distributing points over [jobs] domains ([<= 0]
    = auto: {!Hsgc_sim.Domain_pool.recommended_jobs} clamped to the
    point count). Points are isolated per [on_error] (default [Skip] —
    a crashed point surfaces as [Hung] rather than killing the
    campaign). Results keep matrix order at every [jobs] level. *)

val render : summary -> string
(** Human-readable campaign report (per-point table + rates). *)

val to_json : summary -> string
(** The BENCH_chaos.json payload: campaign rates plus the per-point
    records. *)
