(** Chaos campaigns: systematic fault-injection sweeps over the
    (fault class × intensity × workload) matrix.

    Each campaign point runs one collection with a seeded fault plan
    ({!Hsgc_fault.Injector}) and a reference run without faults, then
    classifies the outcome:

    - {b delay-class} points must terminate (within a cycle budget
      derived from the fault-free run) {i and} verify cleanly — against
      both {!Hsgc_heap.Verify.check_collection} and the {!Cheney_seq}
      oracle — demonstrating the microprogram is correct under
      perturbed timing (metamorphic robustness);
    - {b corruption-class} points measure the verifier's detection
      coverage: every point whose injector actually fired must be
      {e detected} (verification failure or structured simulator
      error); a corrupted run that verifies cleanly is a {e silent
      pass} — the one outcome the acceptance bar sets to zero. *)

type klass = [ `Delay | `Corruption ]

type point = {
  klass : klass;
  intensity : float;  (** per-event fault probability *)
  workload : string;
  n_cores : int;
  seed : int;  (** workload seed; the injector seed derives from it *)
}

type classification =
  | Clean  (** terminated, verified OK (and for corruption: no fault fired) *)
  | Detected of string  (** corruption caught — by the verifier or a
                            structured simulator error *)
  | Silent of int
      (** corrupted ([n] flips) yet verified clean — a verifier gap *)
  | Hung of string
      (** watchdog trip / divergence / overflow on a delay-class point —
          a timing-robustness failure of the microprogram *)

type point_result = {
  point : point;
  attempt : int;  (** retry attempt that produced this result *)
  terminated : bool;
  classification : classification;
  faults : int;  (** faults injected, both classes *)
  corruptions : int;  (** corruption-class faults injected *)
  cycles : int;  (** faulted-run collection length (0 when not terminated) *)
  baseline_cycles : int;  (** fault-free run of the same heap *)
}

type summary = {
  results : point_result list;
  delay_points : int;
  delay_terminated : int;
  delay_clean : int;  (** terminated and verified (incl. oracle) *)
  corruption_points : int;
  corruption_armed : int;  (** points whose injector fired at least once *)
  corruption_detected : int;
  corruption_silent : int;
  mean_delay_overhead : float;
      (** mean of [cycles/baseline - 1] over terminated delay points *)
}

val default_intensities : klass -> float list
(** Delay: [0.02; 0.1; 0.3]. Corruption: [0.002; 0.01; 0.05] (bit flips
    are per copied word, so small probabilities already fire often). *)

val default_matrix :
  ?workloads:string list ->
  ?cores:int list ->
  ?intensities:(klass -> float list) ->
  ?seed:int ->
  unit ->
  point list
(** The full campaign matrix: both classes × {!default_intensities} ×
    all workloads (or [workloads]) × [cores] (default [[8]]). *)

val run_point : ?scale:float -> ?attempt:int -> point -> point_result
(** Run one campaign point: fault-free baseline, then the faulted run
    under a cycle budget of 50× the baseline (plus slack), then
    classification. [attempt] (default 0) perturbs the injector seed
    deterministically — the reseed-on-retry hook for
    {!Hsgc_sim.Domain_pool.map_list_policy}. *)

val run :
  ?scale:float ->
  ?jobs:int ->
  ?on_error:Hsgc_sim.Domain_pool.error_policy ->
  point list ->
  summary
(** Run the campaign, distributing points over [jobs] domains ([<= 0]
    = auto: {!Hsgc_sim.Domain_pool.recommended_jobs} clamped to the
    point count). Points are isolated per [on_error] (default [Skip] —
    a crashed point surfaces as [Hung] rather than killing the
    campaign). Results keep matrix order at every [jobs] level. *)

val render : summary -> string
(** Human-readable campaign report (per-point table + rates). *)

(** Interrupt campaign — the crash-safety counterpart of the fault
    matrix. Each point kills a checkpointing run at a deterministic
    random cycle mid-collection (an in-process stand-in for SIGINT; the
    CI resume-smoke job covers a real SIGKILL), resumes from the latest
    snapshot, and demands the resumed final state — verify result,
    total cycle count, per-core counters, trace digest — is identical
    to an uninterrupted run's. A corrupt-detection leg flips one byte
    in every section payload of the kill-time snapshot and demands the
    loader refuses each mutant ({!Hsgc_checkpoint.Checkpoint.Corrupt}).
    Acceptance gates: both rates are 1.0. *)
module Interrupt : sig
  type point = {
    workload : string;
    n_cores : int;
    partitions : int;
        (** BSP partition count the killed and resumed runs step under
            (1 = sequential stepping) *)
    seed : int;  (** workload seed *)
    draw : int;  (** kill-cycle draw index — varies the kill position *)
  }

  type point_result = {
    point : point;
    total_cycles : int;  (** uninterrupted collection length *)
    kill_cycle : int;  (** deterministic random kill position *)
    checkpoints : int;  (** snapshot files on disk at the kill *)
    equivalent : bool;
    mismatch : string option;  (** first differing statistic, if any *)
    corrupt_flips : int;  (** sections mutated in the corrupt leg *)
    corrupt_caught : int;  (** mutants refused by their section CRC *)
  }

  type summary = {
    results : point_result list;
    points : int;
    equivalent : int;
    corrupt_flips : int;
    corrupt_caught : int;
  }

  val default_matrix :
    ?workloads:string list ->
    ?cores:int list ->
    ?partitions:int list ->
    ?draws:int ->
    ?seed:int ->
    unit ->
    point list
  (** All workloads (or [workloads]) × [cores] (default [[8]]) ×
      [partitions] (default [[1; 4]]) × [draws] kill positions
      (default 1). *)

  val run_point : ?scale:float -> point -> point_result
  (** Uninterrupted reference run, killed-and-checkpointed run, corrupt
      leg, resumed run, equivalence comparison. Checkpoints live in a
      fresh temporary directory, removed before returning. *)

  val run : ?scale:float -> ?jobs:int -> point list -> summary

  val passed : summary -> bool
  (** Both gates at 100%: every point resume-equivalent, every flip
      refused. *)

  val render : summary -> string

  val to_json : summary -> string
  (** Standalone JSON object (also what {!val:to_json} embeds under
      ["interrupt"] in BENCH_chaos.json). *)
end

val to_json : ?interrupt:Interrupt.summary -> summary -> string
(** The BENCH_chaos.json payload: campaign rates plus the per-point
    records; [interrupt] adds the interrupt campaign's record under an
    ["interrupt"] key. *)
