(** Stepping-throughput benchmark for the simulation kernel
    ([BENCH_sim.json]).

    Times {e collection only}: every heap is prebuilt outside the timed
    region and each leg's wall is [Coprocessor.wall_seconds] (monotonic,
    start-to-finalize), so the numbers measure the kernel's stepping
    loop rather than workload generation or table rendering — the
    quantity the event-driven scheduler optimizes. Each grid point runs
    four times (naive stepping, event-driven skipping, skipping with the
    machine sanitizer attached, and the compiled engine) from identical
    heaps; the suite asserts cycle-count equality between the four, full
    per-counter parity plus a verified bit-identical post-heap for the
    compiled run, that the sanitizer stays silent on every default
    configuration, and that minor allocation stays within the
    steady-state budgets (whole-collection for skip, loop-only for
    compiled). *)

type leg = {
  workload : string;
  n_cores : int;
  cycles : int;  (** simulated = executed + skipped *)
  executed : int;
  skipped : int;
  naive_wall_s : float;  (** sim-only wall, skip disabled *)
  skip_wall_s : float;  (** sim-only wall, skip enabled *)
  san_wall_s : float;  (** sim-only wall, skip enabled, sanitizer on *)
  compiled_wall_s : float;  (** sim-only wall, compiled engine *)
  minor_words : float;  (** [Gc.minor_words] delta of the skip run *)
  compiled_executed : int;  (** the compiled run's executed share *)
  compiled_loop_words : float;
      (** [Gc.minor_words] delta of the compiled run's stepping loop
          alone — [start]/[finalize] setup excluded *)
}

type aggregate = {
  sim_cycles : int;
  skipped_cycles : int;
  skipped_frac : float;
  naive_s : float;
  skip_s : float;
  naive_mcycles_per_s : float;
  skip_mcycles_per_s : float;
  skip_speedup : float;
  words_per_cycle : float;  (** minor words per executed cycle, skip runs *)
  sanitize_s : float;
  sanitizer_overhead : float;
      (** fractional throughput cost of attaching the sanitizer:
          sanitizer-on wall over sanitizer-off wall, minus one *)
  compiled_s : float;
  compiled_mcycles_per_s : float;
  compiled_speedup_vs_skip : float;
      (** skip wall over compiled wall — a same-process ratio over
          identical simulated cycles, so host-independent and gated *)
  compiled_words_per_cycle : float;
      (** minor words per executed cycle inside the compiled stepping
          loop alone; must stay ~0 *)
}

type obs_probe = {
  obs_workload : string;
  obs_cores : int;
  obs_cycles : int;
  obs_events : int;  (** events kept in the tracer ring *)
  obs_dropped : int;
  trace_digest : string;  (** golden-trace fingerprint of the event stream *)
  profile_busy_frac : float;
  profile_stall_frac : float;
  profile_idle_frac : float;
      (** the three fractions sum to 1 by the profiler's closure identity *)
  obs_wall_s : float;
  obs_overhead : float;  (** instrumented wall over plain wall, minus one *)
}
(** One fully instrumented collection (cup at 8 cores, tracer and
    profiler enabled) next to an identical plain run. The digest and
    profile fractions are deterministic simulation statistics; the
    overhead ratio records the tracer-ON cost. The probe raises
    {!Perf_regression} if instrumentation perturbs the cycle count or
    the per-core attribution stops summing to the total. *)

type par_probe = {
  par_workload : string;
  par_cores : int;
  par_cycles : int;  (** collection length, identical across every leg *)
  par_points : (int * float) list;  (** (partitions, BSP wall seconds) *)
  par_seq_wall_s : float;  (** sequential skip-kernel wall, same heap *)
  par_speedup : float;
      (** sequential wall over the best partitioned wall — recorded for
          humans, never gated (the runner may have one hardware thread) *)
  par_supersteps : int;
  par_handoffs : int;  (** spans dispatched to worker domains *)
  par_exclusive_frac : float;
      (** fraction of simulated cycles covered by exclusive spans at the
          deepest partitioning — a deterministic scheduling statistic *)
}
(** One latency-bound collection (db at 16 cores) run sequentially and
    then under the BSP kernel at 2/4/8 partitions. The probe raises
    {!Perf_regression} if any partitioned leg's cycle count diverges
    from the sequential run, or if the sanitized BSP leg reports a
    finding — the host-independent acceptance bars of the parallel
    kernel. *)

type banked_probe = {
  bk_workload : string;
  bk_cores : int;
  bk_dense_cycles : int;  (** dense-machine modeled collection length *)
  bk_dense_wall_s : float;
  bk_points : (int * int * float) list;
      (** (banks, banked modeled cycles, banked wall seconds at auto
          lanes) *)
  bk_speedup : float;
      (** dense wall over the best banked wall — recorded for humans;
          gated only on hosts with enough domains (see {!check}) *)
  bk_self_speedup : float;
      (** banked 1-lane wall over banked auto-lane wall at the deepest
          banking — the physically demonstrable concurrency win; gated
          only when the host has >= 4 recommended domains *)
  bk_host_lanes : int;
      (** [Domain.recommended_domain_count] at measurement time — the
          context a reader (and {!check}) needs to interpret the wall
          ratios *)
  bk_modeled_ratio : float;
      (** dense modeled cycles over banked modeled cycles at the deepest
          banking — deterministic, host-independent (below 1.0 is
          expected: the serial arbitration and stitch steps are charged
          in full) *)
  bk_remote_frac : float;
      (** remote (bank-crossing) requests per live object at the deepest
          banking — a deterministic statistic of the home-range cut *)
  bk_supersteps : int;
}
(** One collection (db at 16 cores) run on the dense machine and on the
    banked machine at 2/4/8 banks. The probe raises {!Perf_regression}
    if any banked point violates the semantic-equivalence contract
    ({!Hsgc_coproc.Banked.differential}) or if the sanitized banked leg
    reports a finding — the host-independent acceptance bars of the
    banked machine. *)

type suite = {
  scale : float;
  seed : int;
  base : aggregate;
  base_legs : leg list;
  latency_extra : int;
  latency : aggregate;
  obs : obs_probe;
  par : par_probe;
  banked : banked_probe;
}

val default_cores : int list
(** The fig5 core grid, [1; 2; 4; 8; 16]. *)

val words_per_cycle_budget : float
(** Steady-state allocation budget (minor words per executed cycle);
    {!run} raises {!Perf_regression} beyond it. *)

val compiled_words_per_cycle_budget : float
(** Allocation budget for the compiled engine's stepping loop alone —
    near zero, because the loop-only measurement has no setup cost to
    amortize. {!run} raises {!Perf_regression} beyond it. *)

val compiled_speedup_floor_base : float

val compiled_speedup_floor_latency : float
(** Hard floors for the compiled/skip throughput ratio, enforced by
    {!check} on the base and latency-bound aggregates respectively. *)

exception Perf_regression of string
(** A hard invariant failed while benchmarking: cycle counts diverged
    between engines, the compiled engine broke statistic parity or
    post-heap verification, the sanitizer flagged a default
    configuration, or a hot loop allocated beyond budget. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?cores:int list ->
  ?latency_extra:int ->
  ?progress:(leg -> unit) ->
  unit ->
  suite
(** Run the full grid — every workload of {!Hsgc_objgraph.Workloads.all}
    at every core count, on the default memory and again with
    [latency_extra] (default 20) cycles added to every access.
    [progress] is called after each completed leg. *)

val to_json : suite -> string
(** Render the tracked [BENCH_sim.json] artifact. *)

val summary : suite -> string
(** Multi-line human summary (base, latency-bound, observability,
    parallel and banked probes). *)

val check : baseline:string -> suite -> (unit, string list) result
(** Compare a fresh suite against the committed [BENCH_sim.json]
    contents. Gates only host-independent metrics — skipped fractions
    (deterministic statistics), allocation rates, the latency-bound
    skip-speedup ratio and the compiled/skip speedup ratios (each a
    pair of walls from the same process), the BSP kernel's
    exclusive-span fraction, and the banked machine's modeled-cycle
    ratio and remote-request fraction — each with 20% tolerance plus
    the hard
    {!compiled_speedup_floor_base}/{!compiled_speedup_floor_latency}
    bars; absolute Mcycles/s and the parallel speedup are
    informational. The banked self-speedup carries a hard 1.30x floor
    that arms only on hosts with at least 4 recommended domains — on a
    single-thread runner a wall gate would test the host, not the
    code. [Error] carries one message per violated gate. *)
