module Heap = Hsgc_heap.Heap
module Header = Hsgc_heap.Header
module Semispace = Hsgc_heap.Semispace

type stats = { live_objects : int; live_words : int }

exception Heap_overflow

let collect heap =
  let to_sp = Heap.to_space heap in
  let free = ref to_sp.Semispace.base in
  let scan = ref to_sp.Semispace.base in
  let live_objects = ref 0 in
  (* Copy [obj] to tospace (unless already copied this cycle) and return
     the tospace address. Gray marks "copied in this cycle"; White and
     Black (a survivor of the previous cycle) both mean "not yet". *)
  let evacuate obj =
    let w0 = Heap.header0 heap obj in
    match Header.state w0 with
    | Gray -> Heap.header1 heap obj
    | White | Black ->
      let size = Header.size w0 in
      if !free + size > to_sp.Semispace.limit then raise Heap_overflow;
      let copy = !free in
      free := !free + size;
      incr live_objects;
      Heap.set_header0 heap copy
        (Header.encode ~state:Black ~pi:(Header.pi w0) ~delta:(Header.delta w0));
      Heap.set_header1 heap copy 0;
      for i = 0 to size - Header.header_words - 1 do
        Heap.write heap
          (copy + Header.header_words + i)
          (Heap.read heap (obj + Header.header_words + i))
      done;
      Heap.set_header0 heap obj (Header.with_state w0 Gray);
      Heap.set_header1 heap obj copy;
      copy
  in
  let roots = heap.Heap.roots in
  Array.iteri
    (fun i r -> if r <> Heap.null then roots.(i) <- evacuate r)
    roots;
  while !scan < !free do
    let obj = !scan in
    let w0 = Heap.header0 heap obj in
    let pi = Header.pi w0 in
    for slot = 0 to pi - 1 do
      let child = Heap.get_pointer heap obj slot in
      if child <> Heap.null then Heap.set_pointer heap obj slot (evacuate child)
    done;
    scan := obj + Header.size w0
  done;
  to_sp.Semispace.free <- !free;
  Heap.flip heap;
  { live_objects = !live_objects; live_words = Semispace.used (Heap.from_space heap) }
