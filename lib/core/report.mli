(** Renders the paper's evaluation artifacts from experiment data.

    Each function returns the artifact as printable text (an aligned
    table, or an ASCII chart plus its data table). [bin/repro.exe] and
    the bench harness print them. *)

type sweep_data = (string * Experiment.measurement list) list
(** Per workload: measurements across core counts. *)

val run_sweeps :
  ?verify:bool ->
  ?scale:float ->
  ?seeds:int array ->
  ?mem:Experiment.Memsys.config ->
  ?skip:bool ->
  ?sanitize:Hsgc_sanitizer.Sanitizer.mode ->
  ?cores:int list ->
  ?jobs:int ->
  unit ->
  sweep_data
(** One sweep over all eight workloads (the data behind Figure 5 and
    Table I; the 16-core column doubles as Table II). [skip] passes
    through to the simulation kernel (idle-cycle skipping, default on).
    [jobs > 1] distributes the workload x cores grid over that many
    domains — one simulator per point, results regrouped in workload
    order, so every artifact is byte-identical at any [jobs] level. *)

val kernel_summary : sweep_data -> string
(** Kernel observability: per workload (and in total), simulated cycles,
    cycles skipped by the kernel, wall-clock seconds, and simulated
    Mcycles per wall second. *)

val figure5 : sweep_data -> string
(** "Scaling behavior": speedup vs. core count, all workloads. *)

val table1 : sweep_data -> string
(** "Fraction of clock cycles during which work list is empty". *)

val table2 : ?n_cores:int -> sweep_data -> string
(** "Clock cycle distribution (for 16 cores)": total plus the seven
    stall columns, absolute and percent, mean per core. *)

val figure6 : sweep_data -> string
(** "Scaling behavior (more realistic memory latency)": the caller passes
    a sweep obtained with [mem = with_extra_latency default 20]. *)

val fifo_summary : sweep_data -> string
(** Extension table: header-FIFO hits/overflows per workload — the
    mechanism behind cup's scan-lock stalls. *)

val heap_size_invariance : ?scale:float -> ?seed:int -> unit -> string
(** Section VI-B opening remark: collection cost is independent of heap
    size — db at 8 cores with the semispace at 1.2×..8× the data. *)

val baselines : ?scale:float -> ?seed:int -> unit -> string
(** E5: the Section III software schemes vs hardware support, simulated
    under the commodity synchronization cost model, on search/db/javac. *)

val future_work : ?scale:float -> ?seed:int -> unit -> string
(** E7: the Section VII proposals as ablations — sub-object scan units on
    a large-array heap, and the header cache on javac at 16 cores. *)

val concurrent_pauses : ?scale:float -> ?seed:int -> unit -> string
(** E8: stop-the-world pause vs concurrent pause (root phase only), with
    read-barrier and mutator-progress counts; every run verified. *)

val profile_table : total:int -> Hsgc_obs.Profiler.t -> string
(** Render a closed stall-attribution profile as the operator-facing
    table: one row per core (absolute cycles in each of the nine
    buckets, each row summing to [total]) plus an ALL row with
    aggregate counts and percentages — the machine-checked counterpart
    of the paper's Table II. *)

val metrics_summary : Hsgc_obs.Metrics.t -> string
(** Render a tracer's metrics registry: one row per non-empty histogram
    (count, mean, conservative p50/p90/p99, max — all in cycles) and
    one per counter. *)

val stall_diagnosis : Hsgc_coproc.Coprocessor.diagnosis -> string
(** Render a {!Hsgc_coproc.Coprocessor.Stall_diagnosis} payload as the
    operator-facing report: a short reading guide followed by the full
    machine dump ({!Hsgc_coproc.Coprocessor.pp_diagnosis}). *)

val sanitizer_findings : total:int -> Hsgc_sanitizer.Diag.t list -> string
(** Render the sanitizer findings of a run ({!Hsgc_coproc.Coprocessor}
    [gc_stats.sanitizer_findings]) as the operator-facing report: a
    summary line ([total] counts deduplicated repeats) followed by one
    line per kept finding with cycle, core, address and held-lockset
    context. *)
