(** Counterexample replay: drive a model-checker schedule through the
    {e real} synchronization block and dynamic sanitizer.

    Every abstract action is expanded to the concrete sync-block calls
    and hook events the collector microprogram would issue for it, using
    a fixed address map (object [o]'s fromspace frame at [8 * o], tospace
    frames claimed live from the real free register). Operations the
    mutated hardware would have refused are driven into the hook record
    directly, exactly as [test/mutations.ml] does — the point of a broken
    collector is that its own guard rails are gone, so only the
    sanitizer's independent mirror can notice.

    The sanitizer runs in [Check] mode so every finding is collected;
    [--sanitize strict] behavior is derived from it (strict raises on the
    first finding, so [first] is what a strict run would abort with). *)

type result = {
  steps : int;  (** schedule steps actually replayed *)
  flagged : bool;  (** a strict run would have raised *)
  first : string option;  (** check name of the first finding *)
  checks : string list;  (** distinct finding check names, oldest first *)
}

val run : Explore.config -> Explore.schedule -> result
(** Replays the schedule (typically a counterexample from
    {!Explore.run} under the same config) from a fresh sync block,
    sanitizer and heap, with the graph's roots pre-evacuated by core 0
    as in the model's initial state. *)

val hits : result -> Hsgc_sanitizer.Diag.check -> bool
(** Did the dynamic sanitizer flag this check during the replay? *)
