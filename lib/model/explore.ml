(* Explicit-state exploration: BFS (minimal counterexamples) or DFS
   with sleep sets (partial-order reduction), both over a visited table
   keyed on the canonical (core-symmetric) state encoding. *)

type config = {
  graph : Proto.graph;
  n_cores : int;
  mutation : Proto.mutation;
  por : bool;
  symmetry : bool;
  max_states : int;
}

let default_config ~graph ~n_cores =
  {
    graph;
    n_cores;
    mutation = Proto.Correct;
    por = true;
    symmetry = true;
    max_states = 2_000_000;
  }

type stats = {
  states : int;
  transitions : int;
  slept : int;
  max_depth : int;
  finals : int;
}

type schedule = (int * Proto.action) list

type outcome =
  | Verified of stats
  | Violation of Proto.violation * schedule * stats
  | Deadlock of schedule * stats
  | Livelock of schedule * stats
  | Out_of_bounds of stats

let outcome_stats = function
  | Verified s | Violation (_, _, s) | Deadlock (_, s) | Livelock (_, s)
  | Out_of_bounds s ->
    s

let outcome_name = function
  | Verified _ -> "verified"
  | Violation (v, _, _) -> "violation:" ^ Proto.check_name v.Proto.vcheck
  | Deadlock _ -> "deadlock"
  | Livelock _ -> "livelock"
  | Out_of_bounds _ -> "out-of-bounds"

let pp_schedule ppf sched =
  List.iteri
    (fun i (c, a) ->
      Format.fprintf ppf "  #%-3d core %d  %s@." (i + 1) c
        (Proto.action_name a))
    sched

(* --- growable arrays (OCaml 5.1 has no Dynarray yet) ---------------- *)

module Dyn = struct
  type 'a t = { mutable a : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { a = Array.make 1024 dummy; len = 0; dummy }

  let push t x =
    if t.len = Array.length t.a then begin
      let b = Array.make (2 * t.len) t.dummy in
      Array.blit t.a 0 b 0 t.len;
      t.a <- b
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.a.(i)
  let set t i x = t.a.(i) <- x
  let len t = t.len
end

(* --- the independence relation for sleep sets ----------------------- *)

(* An action a mutation rewrites is dependent on everything: violating
   transitions and their enabling context must never be slept. *)
let mutated_kind m a =
  match (m, a) with
  | Proto.Correct, _ -> false
  | Proto.Skip_header_lock, (Proto.Acquire_header _ | Proto.Install_forward _)
    ->
    true
  | Proto.Forward_wrong_object, Proto.Install_forward _ -> true
  | Proto.Double_evacuate, (Proto.Recheck _ | Proto.Install_forward _) -> true
  | ( Proto.Release_scan_early,
      (Proto.Check_work | Proto.Release_scan | Proto.Advance_scan_nolock) ) ->
    true
  | Proto.Reorder_locks, Proto.Acquire_scan -> true
  | Proto.Scan_past_free, Proto.Check_work -> true
  | Proto.Fifo_reorder, Proto.Check_work -> true
  | Proto.Unprotected_store, Proto.Copy_words _ -> true
  | Proto.Lockset_race, Proto.Recheck _ -> true
  | Proto.Barrier_skew_run, Proto.Barrier_arrive -> true
  | Proto.Lost_core, Proto.Barrier_arrive -> true
  | Proto.Stuck_child, (Proto.Poll_child _ | Proto.Read_child _) -> true
  | _ -> false

type cls = Hdr of int | Scan_side | Free_side | Pure | Barrier | Mutated

let cls m a =
  if mutated_kind m a then Mutated
  else
    match a with
    | Proto.Acquire_header o
    | Proto.Release_header o
    | Proto.Read_child o
    | Proto.Recheck o
    | Proto.Install_forward o
    | Proto.Poll_child o ->
      Hdr o
    | Proto.Acquire_scan | Proto.Check_work | Proto.Release_scan
    | Proto.Advance_scan_nolock | Proto.Finish_object _ ->
      Scan_side
    | Proto.Acquire_free | Proto.Release_free | Proto.Claim_free _ ->
      Free_side
    | Proto.Copy_words _ -> Pure
    | Proto.Barrier_arrive -> Barrier

(* Pairwise independence of actions by different cores: both orders are
   enabled and commute. The footprint argument per class:
   - Hdr o touches only object o's header-lock slot / forwarding bit;
   - Scan_side touches the scan lock, scan register, worklist and busy
     bits; Free_side touches the free lock/register, copy counts and the
     worklist push side — the shared worklist makes the two sides
     dependent on each other but neither touches headers;
   - Copy_words only moves the core's own pc;
   - Barrier arrivals touch only the arrival/release registers. *)
let independent m (c1, a1) (c2, a2) =
  c1 <> c2
  &&
  match (cls m a1, cls m a2) with
  | Mutated, _ | _, Mutated -> false
  | Pure, _ | _, Pure -> true
  | Barrier, Barrier -> false
  | Barrier, _ | _, Barrier -> true
  | Hdr o1, Hdr o2 -> o1 <> o2
  | Hdr _, (Scan_side | Free_side) | (Scan_side | Free_side), Hdr _ -> true
  | (Scan_side | Free_side), (Scan_side | Free_side) -> false

(* --- the search ----------------------------------------------------- *)

exception Stop of outcome

type space = {
  cfg : config;
  tbl : (string, int) Hashtbl.t;
  keys : string Dyn.t;
  parent : int Dyn.t;
  depth : int Dyn.t;
  explored : int Dyn.t;  (* per-state bitmask of canonical cores taken *)
  mutable transitions : int;
  mutable slept : int;
  mutable max_depth : int;
  mutable finals : int;
}

let key_of sp st = if sp.cfg.symmetry then Canon.key st else Canon.encode st

let core_map sp st =
  if sp.cfg.symmetry then Canon.canon_core_map st
  else Array.init sp.cfg.n_cores (fun c -> c)

let stats_of sp =
  {
    states = Dyn.len sp.keys;
    transitions = sp.transitions;
    slept = sp.slept;
    max_depth = sp.max_depth;
    finals = sp.finals;
  }

let enabled_list sp st =
  let acc = ref [] in
  for c = sp.cfg.n_cores - 1 downto 0 do
    match Proto.enabled sp.cfg.graph sp.cfg.mutation st ~core:c with
    | Some a -> acc := (c, a) :: !acc
    | None -> ()
  done;
  !acc

(* Rebuild the concrete schedule for a discovered state by walking the
   parent chain and forward-matching canonical keys from the initial
   state. Under symmetry the matched core ids may differ from the ones
   the search happened to take, but the schedule is a genuine concrete
   interleaving reaching an equivalent state — which is what replay
   needs. *)
let path_to sp id =
  let rec chain id acc =
    if id = 0 then acc else chain (Dyn.get sp.parent id) (id :: acc)
  in
  chain id []

let reconstruct sp id_target =
  let g = sp.cfg.graph and m = sp.cfg.mutation in
  let cur = ref (Proto.initial g ~n_cores:sp.cfg.n_cores) in
  let sched = ref [] in
  List.iter
    (fun next_id ->
      let want = Dyn.get sp.keys next_id in
      let found = ref false in
      let c = ref 0 in
      while (not !found) && !c < sp.cfg.n_cores do
        (match Proto.enabled g m !cur ~core:!c with
        | Some a -> (
          match Proto.apply g m !cur ~core:!c a with
          | Ok s' when key_of sp s' = want ->
            sched := (!c, a) :: !sched;
            cur := s';
            found := true
          | _ -> ())
        | None -> ());
        incr c
      done;
      if not !found then
        invalid_arg "Explore.reconstruct: parent chain does not replay")
    (path_to sp id_target);
  (List.rev !sched, !cur)

(* Register a state; returns (id, was_new). Raises on invariant or
   quiescence violations and on the state bound. *)
let register sp ~parent ~via st =
  let k = key_of sp st in
  match Hashtbl.find_opt sp.tbl k with
  | Some id -> (id, false)
  | None ->
    let id = Dyn.len sp.keys in
    if id >= sp.cfg.max_states then raise (Stop (Out_of_bounds (stats_of sp)));
    Hashtbl.add sp.tbl k id;
    Dyn.push sp.keys k;
    Dyn.push sp.parent parent;
    let d = if parent < 0 then 0 else Dyn.get sp.depth parent + 1 in
    Dyn.push sp.depth d;
    Dyn.push sp.explored 0;
    if d > sp.max_depth then sp.max_depth <- d;
    ignore via;
    (* Invariant and quiescence failures are properties of the state just
       reached: the counterexample is the discovery path itself, whose
       last action produced the offending state. *)
    (match Proto.invariant sp.cfg.mutation st with
    | Some v ->
      raise (Stop (Violation (v, fst (reconstruct sp id), stats_of sp)))
    | None -> ());
    (* A state with nothing enabled anywhere is either quiescent or a
       deadlock; check it at first discovery. *)
    if enabled_list sp st = [] then
      if Proto.is_final st then begin
        match Proto.quiescence sp.cfg.graph st with
        | Some v ->
          raise (Stop (Violation (v, fst (reconstruct sp id), stats_of sp)))
        | None -> sp.finals <- sp.finals + 1
      end
      else raise (Stop (Deadlock (fst (reconstruct sp id), stats_of sp)));
    (id, true)

(* A transition error was found from the search's representative of
   state [from_id]; the reconstructed concrete path may reach a
   core-permuted (but symmetric) twin of it, so re-derive the violating
   step from the reconstructed state. Core permutations never touch
   object ids, so a step tripping the same check is guaranteed to be
   enabled there. *)
let violation_take sp ~from_id v =
  let g = sp.cfg.graph and m = sp.cfg.mutation in
  let sched, st = reconstruct sp from_id in
  let hit = ref None in
  List.iter
    (fun (c, a) ->
      if !hit = None then
        match Proto.apply g m st ~core:c a with
        | Error v' when v'.Proto.vcheck = v.Proto.vcheck ->
          hit := Some ((c, a), v')
        | _ -> ())
    (enabled_list sp st);
  match !hit with
  | Some (step, v') -> (v', sched @ [ step ])
  | None -> invalid_arg "Explore.reconstruct: violating step does not replay"

let take sp ~from_id st (c, a) =
  sp.transitions <- sp.transitions + 1;
  match Proto.apply sp.cfg.graph sp.cfg.mutation st ~core:c a with
  | Error v ->
    let v', sched = violation_take sp ~from_id v in
    raise (Stop (Violation (v', sched, stats_of sp)))
  | Ok s' -> s'

let bfs sp s0 =
  let q = Queue.create () in
  let id0, _ = register sp ~parent:(-1) ~via:None s0 in
  Queue.push (id0, s0) q;
  while not (Queue.is_empty q) do
    let id, st = Queue.pop q in
    List.iter
      (fun t ->
        let s' = take sp ~from_id:id st t in
        let id', fresh = register sp ~parent:id ~via:(Some t) s' in
        if fresh then Queue.push (id', s') q)
      (enabled_list sp st)
  done

(* DFS with sleep sets. Each state carries a bitmask (in canonical core
   space) of actions already executed from it, so symmetric revisits
   resume where the orbit left off instead of re-expanding; masks only
   grow, which bounds revisits. A transition is skipped when it is in
   the sleep set (it commutes with an already-explored sibling and is
   covered by that interleaving) or already in the mask. *)
type frame = {
  id : int;
  st : Proto.state;
  cmap : int array;
  mutable todo : (int * Proto.action) list;
  mutable taken : (int * Proto.action) list;
  sleep : (int * Proto.action) list;
}

let dfs sp s0 =
  let m = sp.cfg.mutation in
  let mk_frame id st sleep =
    let cmap = core_map sp st in
    let en = enabled_list sp st in
    let mask = Dyn.get sp.explored id in
    let todo =
      List.filter
        (fun (c, a) ->
          if List.exists (fun t -> t = (c, a)) sleep then begin
            sp.slept <- sp.slept + 1;
            false
          end
          else mask land (1 lsl cmap.(c)) = 0)
        en
    in
    { id; st; cmap; todo; taken = []; sleep }
  in
  let id0, _ = register sp ~parent:(-1) ~via:None s0 in
  let stack = ref [ mk_frame id0 s0 [] ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | f :: rest -> (
      match f.todo with
      | [] -> stack := rest
      | ((c, _) as t) :: todo ->
        f.todo <- todo;
        let bit = 1 lsl f.cmap.(c) in
        let mask = Dyn.get sp.explored f.id in
        if mask land bit <> 0 then ()  (* raced by a deeper revisit *)
        else begin
          Dyn.set sp.explored f.id (mask lor bit);
          let s' = take sp ~from_id:f.id f.st t in
          let child_sleep =
            List.filter (fun t' -> independent m t' t) (f.sleep @ f.taken)
          in
          f.taken <- t :: f.taken;
          let id', _fresh = register sp ~parent:f.id ~via:(Some t) s' in
          let child = mk_frame id' s' child_sleep in
          if child.todo <> [] then stack := child :: f :: rest
        end)
  done

(* Backward reachability from the final states over the full transition
   relation: any visited state that cannot reach quiescence loops
   forever under every (fair or not) scheduler. Sleep sets prune
   transitions, not states, so recomputing full successor sets here
   restores the complete edge relation. *)
let livelock_check sp =
  let n = Dyn.len sp.keys in
  let rev = Array.make n [] in
  let finals = ref [] in
  for id = 0 to n - 1 do
    let st = Canon.decode (Dyn.get sp.keys id) in
    let en = enabled_list sp st in
    if en = [] && Proto.is_final st then finals := id :: !finals;
    List.iter
      (fun (c, a) ->
        match Proto.apply sp.cfg.graph sp.cfg.mutation st ~core:c a with
        | Ok s' -> (
          match Hashtbl.find_opt sp.tbl (key_of sp s') with
          | Some id' -> rev.(id') <- id :: rev.(id')
          | None -> ())
        | Error _ -> ())
      en
  done;
  let coreach = Array.make n false in
  let q = Queue.create () in
  List.iter
    (fun id ->
      coreach.(id) <- true;
      Queue.push id q)
    !finals;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun p ->
        if not coreach.(p) then begin
          coreach.(p) <- true;
          Queue.push p q
        end)
      rev.(id)
  done;
  let stuck = ref (-1) in
  for id = n - 1 downto 0 do
    if not coreach.(id) then stuck := id
  done;
  if !stuck >= 0 then
    raise (Stop (Livelock (fst (reconstruct sp !stuck), stats_of sp)))

let fair_schedule cfg =
  let g = cfg.graph and m = cfg.mutation in
  let st = ref (Proto.initial g ~n_cores:cfg.n_cores) in
  let sched = ref [] in
  let stuck = ref false in
  let steps = ref 0 in
  while (not !stuck) && !steps < 100_000 do
    let moved = ref false in
    for c = 0 to cfg.n_cores - 1 do
      match Proto.enabled g m !st ~core:c with
      | Some (Proto.Poll_child _) -> ()  (* self-loop: skipping is the fairness *)
      | Some a -> (
        match Proto.apply g m !st ~core:c a with
        | Ok s' ->
          sched := (c, a) :: !sched;
          st := s';
          moved := true;
          incr steps
        | Error _ ->
          sched := (c, a) :: !sched;
          stuck := true)
      | None -> ()
    done;
    if not !moved then stuck := true
  done;
  List.rev !sched

let run cfg =
  let cfg =
    if Proto.symmetric cfg.mutation then cfg else { cfg with symmetry = false }
  in
  let sp =
    {
      cfg;
      tbl = Hashtbl.create 4096;
      keys = Dyn.create "";
      parent = Dyn.create (-1);
      depth = Dyn.create 0;
      explored = Dyn.create 0;
      transitions = 0;
      slept = 0;
      max_depth = 0;
      finals = 0;
    }
  in
  if cfg.n_cores > 60 then invalid_arg "Explore.run: too many cores";
  let s0 = Proto.initial cfg.graph ~n_cores:cfg.n_cores in
  try
    if cfg.por then dfs sp s0 else bfs sp s0;
    livelock_check sp;
    Verified (stats_of sp)
  with Stop o -> o
