(** The abstracted protocol machine the model checker explores.

    This is the paper's collector microprogram (Section IV) reduced to
    the operations the synchronization block arbitrates: scan/header/
    free lock acquire-release, the scan/free register advances, the
    header-FIFO push/pop carried by free claims and work grabs, the
    forwarding-pointer install, and barrier arrival. Everything between
    two sync-block operations is collapsed into one atomic step, because
    between those operations a core only touches words it exclusively
    owns (its own registers, or heap ranges it has claimed) — see
    docs/MODELCHECK.md for the soundness argument.

    Objects are numbered [1..n_objects]; object contents are abstracted
    to the static adjacency of a small object graph. Roots are
    pre-evacuated into the initial worklist, matching the root phase the
    real coprocessor runs under the stop-the-world pause.

    Each core has at most one enabled action per state (the microprogram
    is deterministic; only the interleaving is not), so a schedule is
    just a core sequence and the nondeterminism explored is exactly the
    sync-block arbitration order. *)

(** {2 Object graphs} *)

type graph = {
  gname : string;
  n_objects : int;
  children : int array array;  (** indexed by [o - 1] *)
  roots : int list;
}

val diamond : objects:int -> graph
(** Two roots sharing all remaining objects as children — the minimal
    topology where two cores race to evacuate the same object. *)

val chain : objects:int -> graph
(** A single root with a linear spine: [1 -> 2 -> ... -> n]. *)

val fork : objects:int -> graph
(** One root pointing at every other object: maximal worklist fan-out. *)

val twin : objects:int -> graph
(** Two roots with {e disjoint} child sets (odd vs even objects) — the
    only topology here where two cores hold tospace claims concurrently,
    which is the window the [Unprotected_store] mutant needs. *)

val garbage : objects:int -> graph
(** A fork over [n - 1] objects plus one unreachable object — exercises
    the no-lost/no-resurrected-objects quiescence check. *)

val graph_of_string : string -> objects:int -> (graph, string) result
val graph_names : string list

(** {2 Protocol checks} *)

type check =
  | Header_mutex      (** two cores hold the same header-lock address *)
  | Lock_order        (** acquisition violating scan < header < free *)
  | Scan_protocol     (** scan advanced without the lock, or past free *)
  | Forward_once      (** second evacuation of one object *)
  | Forward_unlocked  (** forward installed without owning the header lock *)
  | Fifo_order        (** worklist served out of push order *)
  | Barrier_skew      (** barrier passed before all cores arrived *)
  | Locks_at_barrier  (** locks still held on barrier arrival *)
  | Protection        (** store to words the core neither claimed nor locked *)
  | Quiescence        (** lost, duplicated or resurrected object at the end *)

val check_name : check -> string

(** {2 Mutations}

    Broken-collector variants mirroring [test/mutations.ml]. A mutation
    rewrites the microprogram of {e every} core (the broken code is the
    code they all run), so core symmetry is preserved — except for the
    liveness demos, which break one core and force symmetry off. *)

type mutation =
  | Correct
  | Skip_header_lock      (** evacuate without taking the child's header lock *)
  | Forward_wrong_object  (** install forwarding over the wrong object *)
  | Double_evacuate       (** locked re-check deleted: race loser re-copies *)
  | Release_scan_early    (** scan advanced after the lock was released *)
  | Reorder_locks         (** scan requested while holding a header lock *)
  | Scan_past_free        (** grab from an empty worklist: scan overruns free *)
  | Fifo_reorder          (** worklist pops the youngest entry first *)
  | Unprotected_store     (** blacken words of an object another core owns *)
  | Lockset_race          (** race loser "fixes up" the winner's copy *)
  | Barrier_skew_run      (** pass the barrier without waiting for the others *)
  | Lost_core             (** one core never arrives: deadlock demo *)
  | Stuck_child           (** forwarded-child skip never advances: livelock demo *)

val symmetric : mutation -> bool
(** [false] only for the single-core liveness demos. *)

(** {2 Machine state} *)

type cont = To_idle | To_barrier | To_scan of int | To_advance of int

type pc =
  | Idle
  | Have_scan
  | Unlock_scan of cont
  | Advance_nolock of int
  | Scanning of int * int           (** (grabbed object, next child slot) *)
  | Lock_pending of int * int * int (** (g, slot, child) — read the child
                                        unforwarded, committed to locking it *)
  | Locked_header of int * int * int
  | Want_free of int * int * int
  | Have_free of int * int * int
  | Unlock_free of int * int * int
  | Copying of int * int * int
  | Installing of int * int * int
  | Unlock_header of int * int      (** (g, next child slot) *)
  | At_barrier
  | Done_

type state = {
  pcs : pc array;
  hdr : int array;          (** header-lock registers, 0 = none *)
  busy : bool array;
  arrived : bool array;
  release_count : int;
  scan_owner : int;         (** -1 = unlocked *)
  free_owner : int;
  scan : int;               (** objects grabbed from the worklist *)
  free : int;               (** objects evacuated (copies claimed) *)
  fifo : int list;          (** worklist, oldest first *)
  forwarded : bool array;   (** indexed by [o - 1] *)
  copies : int array;       (** tospace copies claimed per object *)
}

val initial : graph -> n_cores:int -> state
val is_final : state -> bool

(** {2 Actions} *)

type action =
  | Acquire_scan
  | Check_work
  | Release_scan
  | Advance_scan_nolock
  | Read_child of int
  | Acquire_header of int
  | Recheck of int
  | Acquire_free
  | Claim_free of int
  | Release_free
  | Copy_words of int
  | Install_forward of int
  | Release_header of int
  | Finish_object of int
  | Barrier_arrive
  | Poll_child of int       (** Stuck_child demo: self-loop *)

val action_name : action -> string

type violation = { vcheck : check; vdetail : string }

val enabled : graph -> mutation -> state -> core:int -> action option
(** The core's unique enabled action, [None] if it is blocked (waiting
    on a lock or the barrier) or finished. *)

val apply :
  graph -> mutation -> state -> core:int -> action -> (state, violation) result
(** Execute the core's enabled action. [Error] means the transition
    itself breaches the protocol; exploration stops on that path and the
    schedule up to and including this action is the counterexample. *)

val invariant : mutation -> state -> violation option
(** State predicate checked on every reachable state: header-lock mutual
    exclusion, and (under [Correct]) the scan/free/worklist balance
    [free - scan = |fifo|]. *)

val quiescence : graph -> state -> violation option
(** Checked at final states: every reachable object evacuated exactly
    once, no unreachable object touched, worklist drained, registers
    balanced, no locks held. *)

val victim_of : state -> core:int -> int option
(** The lowest-numbered object some {e other} core is mid-evacuation on
    (claimed but not yet released) — the target [Unprotected_store]
    scribbles over, exposed for the replay layer. *)
