(* Schedule replay against the real sync block + sanitizer. See
   replay.mli for the contract and docs/MODELCHECK.md for how the
   address map ties abstract objects to concrete frames. *)

module SB = Hsgc_hwsync.Sync_block
module Hooks = Hsgc_sanitizer.Hooks
module San = Hsgc_sanitizer.Sanitizer
module Diag = Hsgc_sanitizer.Diag

type result = {
  steps : int;
  flagged : bool;
  first : string option;
  checks : string list;
}

let obj_words = 8
let header_words = 2

type rig = {
  sb : SB.t;
  hooks : Hooks.t;
  san : San.t;
  copy : int array;  (* tospace frame per object, indexed o - 1 *)
  graph : Proto.graph;
  mutation : Proto.mutation;
  n_cores : int;
}

let fs o = obj_words * o
let copy r o = r.copy.(o - 1)

(* The correct evacuation sequence, used to pre-evacuate the roots by
   core 0 (mirroring the model's initial state, where the root phase has
   already run under the stop-the-world pause). *)
let evacuate_root r o =
  let { sb; hooks; _ } = r in
  ignore (SB.try_lock_header sb ~core:0 ~addr:(fs o));
  ignore (SB.try_lock_free sb ~core:0);
  let a = SB.claim_free sb ~core:0 obj_words in
  SB.unlock_free sb ~core:0;
  r.copy.(o - 1) <- a;
  hooks.Hooks.word_written ~core:0 ~base:a ~addr:a;
  hooks.Hooks.word_written ~core:0 ~base:a ~addr:(a + 1);
  hooks.Hooks.word_written ~core:0 ~base:(fs o) ~addr:(fs o);
  hooks.Hooks.forward_installed ~core:0 ~from_:(fs o) ~to_:a;
  SB.unlock_header sb ~core:0;
  hooks.Hooks.fifo_pushed ~addr:a ~buffered:true

(* Emit the concrete operations for one abstract action, given the model
   state st it fires from. Mutated operations the sync block would
   refuse are driven into the hooks directly. *)
let emit r st ~core:c action =
  let { sb; hooks; mutation = m; _ } = r in
  match action with
  | Proto.Acquire_scan ->
    if m = Proto.Reorder_locks && st.Proto.hdr.(c) <> 0 then
      (* The mutant requests scan while the SB comparator would stall
         it on the held header lock; the broken microprogram bypassed
         that stall. *)
      hooks.Hooks.lock_acquired ~lock:Hooks.scan_lock ~core:c ~addr:(-1)
    else ignore (SB.try_lock_scan sb ~core:c)
  | Proto.Check_work -> (
    let grab o =
      hooks.Hooks.range_claimed ~core:c ~lo:(copy r o)
        ~hi:(copy r o + header_words);
      hooks.Hooks.fifo_popped ~addr:(copy r o);
      hooks.Hooks.word_read ~core:c ~base:(copy r o) ~addr:(copy r o)
    in
    match (m, st.Proto.fifo) with
    | Proto.Fifo_reorder, (_ :: _ :: _ as q) ->
      grab (List.nth q (List.length q - 1));
      SB.advance_scan sb ~core:c obj_words
    | Proto.Scan_past_free, [] ->
      (* Phantom grab: the mutant advances scan with nothing pending. *)
      SB.advance_scan sb ~core:c obj_words
    | _, [] -> ()
    | Proto.Release_scan_early, o :: _ -> grab o
    | _, o :: _ ->
      grab o;
      SB.advance_scan sb ~core:c obj_words)
  | Proto.Release_scan -> SB.unlock_scan sb ~core:c
  | Proto.Advance_scan_nolock ->
    let sw = SB.scan sb in
    hooks.Hooks.scan_advanced ~core:c ~scan_was:sw ~scan_now:(sw + obj_words)
      ~free:(SB.free sb)
  | Proto.Read_child _ | Proto.Poll_child _ -> (
    match st.Proto.pcs.(c) with
    | Proto.Scanning (g, _) ->
      hooks.Hooks.word_read ~core:c ~base:(copy r g) ~addr:(copy r g + 1)
    | _ -> ())
  | Proto.Acquire_header o ->
    if m <> Proto.Skip_header_lock then
      ignore (SB.try_lock_header sb ~core:c ~addr:(fs o))
  | Proto.Recheck o ->
    if
      m = Proto.Lockset_race
      && st.Proto.forwarded.(o - 1)
      && List.mem o st.Proto.fifo
    then begin
      (* The race loser "fixes up" the winner's copy: drops the
         fromspace lock, takes the copy frame's lock, and stores into a
         word the winner wrote under its tospace claim — two protectors
         with an empty intersection. *)
      SB.unlock_header sb ~core:c;
      ignore (SB.try_lock_header sb ~core:c ~addr:(copy r o));
      hooks.Hooks.word_written ~core:c ~base:(copy r o) ~addr:(copy r o + 1);
      SB.unlock_header sb ~core:c
    end
    else if SB.header_lock_of sb ~core:c <> None then
      hooks.Hooks.word_read ~core:c ~base:(fs o) ~addr:(fs o)
  | Proto.Acquire_free -> ignore (SB.try_lock_free sb ~core:c)
  | Proto.Claim_free o ->
    (* The gray header is written before the push: the hardware FIFO
       snoops header stores, so the object is never poppable before its
       header words exist. Emitting the writes here keeps the replay's
       store order consistent with the model's claim-time push. *)
    let a = SB.claim_free sb ~core:c obj_words in
    r.copy.(o - 1) <- a;
    hooks.Hooks.word_written ~core:c ~base:a ~addr:a;
    hooks.Hooks.word_written ~core:c ~base:a ~addr:(a + 1);
    hooks.Hooks.fifo_pushed ~addr:a ~buffered:true
  | Proto.Release_free -> SB.unlock_free sb ~core:c
  | Proto.Copy_words _ -> (
    match
      if m = Proto.Unprotected_store then Proto.victim_of st ~core:c else None
    with
    | Some v ->
      (* Blacken a payload word of the victim's half-built copy. *)
      hooks.Hooks.word_written ~core:c ~base:(copy r v)
        ~addr:(copy r v + header_words + 1)
    | None -> ())
  | Proto.Install_forward o ->
    let target =
      if m = Proto.Forward_wrong_object then (o mod r.graph.Proto.n_objects) + 1
      else o
    in
    if SB.header_lock_of sb ~core:c = Some (fs target) then
      hooks.Hooks.word_written ~core:c ~base:(fs target) ~addr:(fs target);
    hooks.Hooks.forward_installed ~core:c ~from_:(fs target) ~to_:(copy r o)
  | Proto.Release_header _ -> SB.unlock_header sb ~core:c
  | Proto.Finish_object g ->
    hooks.Hooks.range_released ~core:c ~lo:(copy r g)
      ~hi:(copy r g + header_words)
  | Proto.Barrier_arrive ->
    if m = Proto.Lost_core && c = r.n_cores - 1 then ()
    else if
      m = Proto.Barrier_skew_run
      && (not st.Proto.arrived.(c))
      && st.Proto.release_count = 0
      && Array.fold_left (fun k a -> if a then k + 1 else k) 0 st.Proto.arrived
         + 1
         < r.n_cores
    then begin
      (* The runaway core barrels through this rendezvous and the next
         one while its peers have not arrived at the first. *)
      hooks.Hooks.barrier_passed ~core:c;
      hooks.Hooks.barrier_passed ~core:c
    end
    else if st.Proto.release_count > 0 && st.Proto.arrived.(c) then
      ignore (SB.barrier_arrive sb ~core:c)
    else begin
      SB.assert_no_locks sb ~core:c;
      ignore (SB.barrier_arrive sb ~core:c)
    end

let run (cfg : Explore.config) sched =
  let g = cfg.Explore.graph in
  let n_cores = cfg.Explore.n_cores in
  let hooks = Hooks.create () in
  let sb = SB.create ~hooks ~n_cores () in
  let mem_words = obj_words * (3 * (g.Proto.n_objects + 1)) in
  let san = San.create ~mode:San.Check ~mem_words ~n_cores ~header_words hooks in
  hooks.Hooks.cycle <- 0;
  let r =
    {
      sb;
      hooks;
      san;
      copy = Array.make g.Proto.n_objects (-1);
      graph = g;
      mutation = cfg.Explore.mutation;
      n_cores;
    }
  in
  let ts_base = obj_words * (g.Proto.n_objects + 1) in
  SB.set_scan sb ts_base;
  SB.set_free sb ts_base;
  List.iter (evacuate_root r) g.Proto.roots;
  let st = ref (Proto.initial g ~n_cores) in
  let steps = ref 0 in
  let raised = ref None in
  (try
     List.iter
       (fun (c, a) ->
         incr steps;
         hooks.Hooks.cycle <- !steps;
         emit r !st ~core:c a;
         match Proto.apply g cfg.Explore.mutation !st ~core:c a with
         | Ok s -> st := s
         | Error _ -> ())
       sched
   with Diag.Violation d -> raised := Some d);
  let findings = San.findings r.san in
  let checks =
    List.map (fun d -> Diag.check_name d.Diag.check) findings
    @ (match !raised with Some d -> [ Diag.check_name d.Diag.check ] | None -> [])
  in
  let rec dedup seen = function
    | [] -> []
    | x :: tl -> if List.mem x seen then dedup seen tl else x :: dedup (x :: seen) tl
  in
  let checks = dedup [] checks in
  {
    steps = !steps;
    flagged = checks <> [];
    first = (match checks with [] -> None | x :: _ -> Some x);
    checks;
  }

let hits res check = List.mem (Diag.check_name check) res.checks
