(** The explicit-state explorer: exhaustive bounded search over all
    core interleavings of the abstract protocol machine.

    Two engines share one visited table:

    - [por = false]: breadth-first search. Counterexamples are minimal
      (fewest sync-block operations).
    - [por = true]: depth-first search with sleep sets. Independent
      sync-block operations (header ops on different objects, scan-side
      vs free-side register ops, barrier arrivals vs everything else)
      are not re-interleaved. Sleep sets prune {e transitions}, never
      states, so the verdict, the visited-state count, the deadlock
      check and the termination pass are all unchanged — only the
      transition count (and wall time) shrinks. Any action a mutation
      rewrites is conservatively dependent on everything, so a
      violating transition can never be slept away.

    [symmetry = true] keys the visited table on {!Canon.key}, folding
    the [n!] core renamings of every state into one representative
    (forced off for asymmetric mutations, see {!Proto.symmetric}).

    Safety violations surface as [Violation] with a replayable
    counterexample schedule. Liveness comes from two checks: a
    non-final state with no enabled action anywhere is a [Deadlock],
    and after a verified search a backward-reachability pass from the
    final states flags any state that can never reach quiescence
    ([Livelock] — under fair scheduling such a state loops forever). *)

type config = {
  graph : Proto.graph;
  n_cores : int;
  mutation : Proto.mutation;
  por : bool;
  symmetry : bool;
  max_states : int;
}

val default_config : graph:Proto.graph -> n_cores:int -> config
(** por and symmetry on, mutation [Correct], 2M-state bound. *)

type stats = {
  states : int;       (** distinct (canonical) states visited *)
  transitions : int;  (** transitions executed *)
  slept : int;        (** transitions pruned by sleep sets *)
  max_depth : int;    (** longest discovery path *)
  finals : int;       (** quiescent terminal states *)
}

type schedule = (int * Proto.action) list
(** Concrete interleaving from the initial state: (core, action) pairs. *)

type outcome =
  | Verified of stats
  | Violation of Proto.violation * schedule * stats
      (** the schedule's last action trips the check *)
  | Deadlock of schedule * stats
      (** the schedule ends in a non-final state with nothing enabled *)
  | Livelock of schedule * stats
      (** the schedule ends in a state from which quiescence is
          unreachable: no fair scheduler can terminate the collection *)
  | Out_of_bounds of stats  (** state bound exhausted: inconclusive *)

val run : config -> outcome

val fair_schedule : config -> schedule
(** One concrete round-robin interleaving from the initial state to
    quiescence (or to the first blocked/violating step) — the
    false-positive direction: replaying it for [Correct] must leave the
    dynamic sanitizer silent. *)

val pp_schedule : Format.formatter -> schedule -> unit
val outcome_stats : outcome -> stats
val outcome_name : outcome -> string
