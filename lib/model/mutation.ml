(* The broken-collector catalog, mirroring test/mutations.ml: the same
   ten failure classes, expressed as microprogram rewrites of the
   abstract machine instead of hand-written hook scripts. Each entry
   names the check the model-level detector fires and the check the
   dynamic sanitizer is expected to raise when the counterexample
   schedule is replayed against the real sync block. *)

module Diag = Hsgc_sanitizer.Diag

type entry = {
  mutation : Proto.mutation;
  name : string;
  graph : string;
  model_check : Proto.check;
  dynamic_check : Diag.check option;  (* None: liveness demo, nothing to replay *)
  blurb : string;
}

let catalog =
  [
    {
      mutation = Proto.Skip_header_lock;
      name = "skip header lock";
      graph = "diamond";
      model_check = Proto.Forward_unlocked;
      dynamic_check = Some Diag.Forward_unlocked;
      blurb = "evacuate without taking the child's header lock";
    };
    {
      mutation = Proto.Forward_wrong_object;
      name = "forward without ownership";
      graph = "diamond";
      model_check = Proto.Forward_unlocked;
      dynamic_check = Some Diag.Forward_unlocked;
      blurb = "install forwarding while holding the wrong header lock";
    };
    {
      mutation = Proto.Double_evacuate;
      name = "double evacuate";
      graph = "diamond";
      model_check = Proto.Forward_once;
      dynamic_check = Some Diag.Forward_once;
      blurb = "locked re-check deleted: the race loser copies again";
    };
    {
      mutation = Proto.Release_scan_early;
      name = "release scan early";
      graph = "diamond";
      model_check = Proto.Scan_protocol;
      dynamic_check = Some Diag.Scan_protocol;
      blurb = "scan advanced after the lock was already released";
    };
    {
      mutation = Proto.Reorder_locks;
      name = "reorder lock acquisition";
      graph = "diamond";
      model_check = Proto.Lock_order;
      dynamic_check = Some Diag.Lock_order;
      blurb = "scan lock requested while holding a header lock";
    };
    {
      mutation = Proto.Scan_past_free;
      name = "scan past free";
      graph = "diamond";
      model_check = Proto.Scan_protocol;
      dynamic_check = Some Diag.Scan_protocol;
      blurb = "grab from an empty worklist: scan overruns free";
    };
    {
      mutation = Proto.Fifo_reorder;
      name = "fifo reorder";
      graph = "diamond";
      model_check = Proto.Fifo_order;
      dynamic_check = Some Diag.Fifo_order;
      blurb = "worklist serves the youngest pending push first";
    };
    {
      mutation = Proto.Unprotected_store;
      name = "unprotected store";
      graph = "twin";
      model_check = Proto.Protection;
      dynamic_check = Some Diag.Unprotected_payload;
      blurb = "blacken payload words of an object another core owns";
    };
    {
      mutation = Proto.Lockset_race;
      name = "lockset race";
      graph = "diamond";
      model_check = Proto.Protection;
      dynamic_check = Some Diag.Lockset_race;
      blurb = "race loser patches the winner's copy under the wrong lock";
    };
    {
      mutation = Proto.Barrier_skew_run;
      name = "barrier skew";
      graph = "diamond";
      model_check = Proto.Barrier_skew;
      dynamic_check = Some Diag.Barrier_skew;
      blurb = "pass the barrier without waiting for the other cores";
    };
  ]

let demos =
  [
    {
      mutation = Proto.Lost_core;
      name = "lost core";
      graph = "diamond";
      model_check = Proto.Quiescence;
      dynamic_check = None;
      blurb = "one core never arrives at the barrier (deadlock demo)";
    };
    {
      mutation = Proto.Stuck_child;
      name = "stuck child";
      graph = "diamond";
      model_check = Proto.Quiescence;
      dynamic_check = None;
      blurb = "forwarded-child skip never advances (livelock demo)";
    };
  ]

let all = catalog @ demos

let normalize s =
  String.map (function '-' | '_' -> ' ' | c -> Char.lowercase_ascii c) s

let find name =
  let name = normalize name in
  List.find_opt (fun e -> normalize e.name = name) all
