(** The tracked model-checking matrix behind BENCH_model.json.

    Three sections, all deterministic (the explorer has no randomness,
    so every number here is exactly reproducible):

    - {b verify}: the correct protocol exhaustively verified across
      graphs, core counts and reduction settings. Small configurations
      run under all four por x symmetry combinations and cross-validate:
      the verdict must agree everywhere, and since sleep sets prune only
      transitions, the visited-state count must be identical with POR on
      and off (at fixed symmetry).
    - {b baseline replay}: a fair round-robin schedule of the correct
      protocol replayed through the real sync block + sanitizer must be
      silent (the false-positive direction).
    - {b mutants}: every broken-collector variant of the catalog model
      checks to a violation (POR and symmetry enabled — reductions must
      not mask bugs), and its counterexample schedule, replayed through
      the real sync block, is independently flagged by the dynamic
      sanitizer with the expected check. The liveness demos must come
      out as deadlock / livelock.

    Every point carries a "gate" string; {!check} compares the gate
    multiset against a committed baseline file and reports any drift. *)

type verify_point = {
  vgraph : string;
  objects : int;
  cores : int;
  por : bool;
  symmetry : bool;
  outcome : string;
  states : int;
  transitions : int;
  slept : int;
  depth : int;
}

type mutant_point = {
  mname : string;
  mgraph : string;
  verdict : string;  (** outcome name, e.g. "violation:forward-once" *)
  sched_len : int;  (** counterexample length, 0 for liveness demos *)
  replay_checks : string list;
  expected : string;  (** expected dynamic check, "-" for demos *)
  hit : bool;  (** expected behavior observed end to end *)
}

type suite = {
  verify : verify_point list;
  cross_checks : int;  (** reduction cross-validation comparisons made *)
  cross_ok : bool;
  baseline_silent : bool;
  mutants : mutant_point list;
}

val run : ?progress:(string -> unit) -> unit -> suite

val all_ok : suite -> bool
(** Everything verified, cross-checks consistent, baseline silent,
    every mutant flagged and replayed as expected. *)

val summary : suite -> string
val to_json : suite -> string

val check : baseline:string -> suite -> (unit, string list) result
(** Compare the suite's gate strings against a committed
    BENCH_model.json (passed as file contents). Exploration is
    deterministic, so the gates must match exactly; [Error] carries one
    message per missing, unexpected, or changed gate. *)
