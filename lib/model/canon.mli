(** State canonicalization for the explorer's visited table.

    Every per-core datum — pc, header-lock register, busy/arrived bits,
    and whether the core holds the scan or free lock — is folded into
    one fixed-width byte block per core, so no global field mentions a
    core index and renaming cores is exactly a permutation of blocks.
    The canonical representative of a state's symmetry orbit is the
    state whose blocks are sorted; computing it is a sort, not an [n!]
    orbit enumeration.

    [encode] is injective and [decode] inverts it, so table keys can
    never silently merge distinct states and the liveness passes can
    rebuild any visited state from its key. *)

val encode : Proto.state -> string
(** Uncanonicalized byte encoding (used when symmetry reduction is off). *)

val decode : string -> Proto.state
(** Inverse of [encode]. Raises [Invalid_argument] on a malformed key. *)

val apply_perm : Proto.state -> int array -> Proto.state
(** [apply_perm st perm] renames cores: new core [j] is old core
    [perm.(j)] ([perm] must be a permutation of [0 .. n-1]). *)

val canon : Proto.state -> Proto.state
(** The orbit representative: blocks sorted, a valid state itself. *)

val key : Proto.state -> string
(** [encode (canon st)] — equal for any two core-renamings of [st]. *)

val canon_core_map : Proto.state -> int array
(** Maps each concrete core index to its slot in the canonical block
    order — the frame translation the explorer uses to share per-state
    explored-action masks across symmetric revisits. *)
