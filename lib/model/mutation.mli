(** The broken-collector catalog the checker is validated against — the
    same ten failure classes as [test/mutations.ml], plus two liveness
    demos ([lost core] deadlocks the barrier, [stuck child] livelocks a
    scan loop) that exercise the explorer's deadlock and
    termination-under-fairness passes. *)

type entry = {
  mutation : Proto.mutation;
  name : string;  (** matches the test/mutations.ml catalog name *)
  graph : string;  (** demo graph whose topology exposes the bug *)
  model_check : Proto.check;  (** check the model-level detector fires *)
  dynamic_check : Hsgc_sanitizer.Diag.check option;
      (** check the dynamic sanitizer raises on counterexample replay;
          [None] for the liveness demos (nothing observable to replay) *)
  blurb : string;
}

val catalog : entry list
(** The ten safety mutants. *)

val demos : entry list
(** The two liveness demos. *)

val all : entry list

val find : string -> entry option
(** Lookup by name; spaces, dashes and underscores are interchangeable. *)
