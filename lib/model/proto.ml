(* The abstracted protocol machine: the collector microprogram reduced
   to sync-block operations, stepped one core-action at a time. See
   proto.mli and docs/MODELCHECK.md for the abstraction argument. *)

type graph = {
  gname : string;
  n_objects : int;
  children : int array array;
  roots : int list;
}

let mk gname n_objects children roots =
  assert (n_objects >= 1 && roots <> []);
  List.iter (fun r -> assert (r >= 1 && r <= n_objects)) roots;
  Array.iter
    (fun ks -> Array.iter (fun o -> assert (o >= 1 && o <= n_objects)) ks)
    children;
  { gname; n_objects; children; roots }

let range lo hi = Array.init (max 0 (hi - lo + 1)) (fun i -> lo + i)

let diamond ~objects:k =
  let k = max k 2 in
  let shared = range 3 k in
  mk
    (Printf.sprintf "diamond%d" k)
    k
    (Array.init k (fun i -> if i <= 1 then shared else [||]))
    [ 1; 2 ]

let chain ~objects:k =
  let k = max k 1 in
  mk
    (Printf.sprintf "chain%d" k)
    k
    (Array.init k (fun i -> if i + 2 <= k then [| i + 2 |] else [||]))
    [ 1 ]

let fork ~objects:k =
  let k = max k 1 in
  mk
    (Printf.sprintf "fork%d" k)
    k
    (Array.init k (fun i -> if i = 0 then range 2 k else [||]))
    [ 1 ]

let twin ~objects:k =
  let k = max k 4 in
  let mine root = Array.of_list
      (List.filter (fun o -> o mod 2 = root mod 2)
         (Array.to_list (range 3 k)))
  in
  mk
    (Printf.sprintf "twin%d" k)
    k
    (Array.init k (fun i -> if i <= 1 then mine (i + 1) else [||]))
    [ 1; 2 ]

let garbage ~objects:k =
  let k = max k 2 in
  mk
    (Printf.sprintf "garbage%d" k)
    k
    (Array.init k (fun i -> if i = 0 then range 2 (k - 1) else [||]))
    [ 1 ]

let graph_names = [ "diamond"; "chain"; "fork"; "twin"; "garbage" ]

let graph_of_string name ~objects =
  match name with
  | "diamond" -> Ok (diamond ~objects)
  | "chain" -> Ok (chain ~objects)
  | "fork" -> Ok (fork ~objects)
  | "twin" -> Ok (twin ~objects)
  | "garbage" -> Ok (garbage ~objects)
  | _ ->
    Error
      (Printf.sprintf "unknown graph %S (expected %s)" name
         (String.concat "|" graph_names))

let reachable g =
  let seen = Array.make g.n_objects false in
  let rec visit o =
    if not seen.(o - 1) then begin
      seen.(o - 1) <- true;
      Array.iter visit g.children.(o - 1)
    end
  in
  List.iter visit g.roots;
  seen

type check =
  | Header_mutex
  | Lock_order
  | Scan_protocol
  | Forward_once
  | Forward_unlocked
  | Fifo_order
  | Barrier_skew
  | Locks_at_barrier
  | Protection
  | Quiescence

let check_name = function
  | Header_mutex -> "header-mutex"
  | Lock_order -> "lock-order"
  | Scan_protocol -> "scan-protocol"
  | Forward_once -> "forward-once"
  | Forward_unlocked -> "forward-unlocked"
  | Fifo_order -> "fifo-order"
  | Barrier_skew -> "barrier-skew"
  | Locks_at_barrier -> "locks-at-barrier"
  | Protection -> "protection"
  | Quiescence -> "quiescence"

type mutation =
  | Correct
  | Skip_header_lock
  | Forward_wrong_object
  | Double_evacuate
  | Release_scan_early
  | Reorder_locks
  | Scan_past_free
  | Fifo_reorder
  | Unprotected_store
  | Lockset_race
  | Barrier_skew_run
  | Lost_core
  | Stuck_child

let symmetric = function Lost_core -> false | _ -> true

type cont = To_idle | To_barrier | To_scan of int | To_advance of int

type pc =
  | Idle
  | Have_scan
  | Unlock_scan of cont
  | Advance_nolock of int
  | Scanning of int * int
  | Lock_pending of int * int * int
  | Locked_header of int * int * int
  | Want_free of int * int * int
  | Have_free of int * int * int
  | Unlock_free of int * int * int
  | Copying of int * int * int
  | Installing of int * int * int
  | Unlock_header of int * int
  | At_barrier
  | Done_

type state = {
  pcs : pc array;
  hdr : int array;
  busy : bool array;
  arrived : bool array;
  release_count : int;
  scan_owner : int;
  free_owner : int;
  scan : int;
  free : int;
  fifo : int list;
  forwarded : bool array;
  copies : int array;
}

let initial g ~n_cores =
  if n_cores < 1 then invalid_arg "Proto.initial: need at least one core";
  if g.n_objects > 120 then invalid_arg "Proto.initial: graph too large";
  let forwarded = Array.make g.n_objects false in
  let copies = Array.make g.n_objects 0 in
  (* Roots are pre-evacuated by the stop-the-world root phase: their
     copies sit gray in the worklist, free has advanced past them. *)
  List.iter
    (fun r ->
      forwarded.(r - 1) <- true;
      copies.(r - 1) <- 1)
    g.roots;
  {
    pcs = Array.make n_cores Idle;
    hdr = Array.make n_cores 0;
    busy = Array.make n_cores false;
    arrived = Array.make n_cores false;
    release_count = 0;
    scan_owner = -1;
    free_owner = -1;
    scan = 0;
    free = List.length g.roots;
    fifo = g.roots;
    forwarded;
    copies;
  }

let is_final st = Array.for_all (fun pc -> pc = Done_) st.pcs

type action =
  | Acquire_scan
  | Check_work
  | Release_scan
  | Advance_scan_nolock
  | Read_child of int
  | Acquire_header of int
  | Recheck of int
  | Acquire_free
  | Claim_free of int
  | Release_free
  | Copy_words of int
  | Install_forward of int
  | Release_header of int
  | Finish_object of int
  | Barrier_arrive
  | Poll_child of int

let action_name = function
  | Acquire_scan -> "acquire-scan"
  | Check_work -> "check-work"
  | Release_scan -> "release-scan"
  | Advance_scan_nolock -> "advance-scan-nolock"
  | Read_child o -> Printf.sprintf "read-child %d" o
  | Acquire_header o -> Printf.sprintf "acquire-header %d" o
  | Recheck o -> Printf.sprintf "recheck %d" o
  | Acquire_free -> "acquire-free"
  | Claim_free o -> Printf.sprintf "claim-free %d" o
  | Release_free -> "release-free"
  | Copy_words o -> Printf.sprintf "copy-words %d" o
  | Install_forward o -> Printf.sprintf "install-forward %d" o
  | Release_header o -> Printf.sprintf "release-header %d" o
  | Finish_object o -> Printf.sprintf "finish-object %d" o
  | Barrier_arrive -> "barrier-arrive"
  | Poll_child o -> Printf.sprintf "poll-child %d" o

type violation = { vcheck : check; vdetail : string }

let viol vcheck fmt = Printf.ksprintf (fun vdetail -> { vcheck; vdetail }) fmt

let other_holds st c o =
  let hit = ref false in
  Array.iteri (fun c' a -> if c' <> c && a = o then hit := true) st.hdr;
  !hit

let none_busy_except st c =
  let ok = ref true in
  Array.iteri (fun c' b -> if c' <> c && b then ok := false) st.busy;
  !ok

let arrived_count st = Array.fold_left (fun n a -> if a then n + 1 else n) 0 st.arrived

let victim_of st ~core =
  let best = ref None in
  Array.iteri
    (fun c' pc ->
      if c' <> core then
        match pc with
        | Unlock_free (_, _, v) | Copying (_, _, v) | Installing (_, _, v) ->
          (match !best with Some b when b <= v -> () | _ -> best := Some v)
        | _ -> ())
    st.pcs;
  !best

let enabled g m st ~core:c =
  let n = Array.length st.pcs in
  match st.pcs.(c) with
  | Idle -> if st.scan_owner = -1 then Some Acquire_scan else None
  | Have_scan -> Some Check_work
  | Unlock_scan _ -> Some Release_scan
  | Advance_nolock _ -> Some Advance_scan_nolock
  | Scanning (g_, i) ->
    let ks = g.children.(g_ - 1) in
    if i >= Array.length ks then Some (Finish_object g_)
    else
      let o = ks.(i) in
      if m = Stuck_child && st.forwarded.(o - 1) then Some (Poll_child o)
      else Some (Read_child o)
  | Lock_pending (_, _, o) ->
    (* The mutated collector that skips the lock also never stalls on
       the comparator array. *)
    if m = Skip_header_lock then Some (Acquire_header o)
    else if other_holds st c o then None
    else Some (Acquire_header o)
  | Locked_header (_, _, o) -> Some (Recheck o)
  | Want_free _ -> if st.free_owner = -1 then Some Acquire_free else None
  | Have_free (_, _, o) -> Some (Claim_free o)
  | Unlock_free _ -> Some Release_free
  | Copying (_, _, o) -> Some (Copy_words o)
  | Installing (_, _, o) -> Some (Install_forward o)
  | Unlock_header _ ->
    if m = Reorder_locks then
      (* Eagerly grab the scan lock for the next round while still
         holding the header lock — blocks until scan is free. *)
      if st.scan_owner = -1 then Some Acquire_scan else None
    else Some (Release_header st.hdr.(c))
  | At_barrier ->
    if m = Lost_core && c = n - 1 then
      if (not st.arrived.(c)) && st.release_count = 0 then Some Barrier_arrive
      else None
    else if st.release_count > 0 then
      if st.arrived.(c) then Some Barrier_arrive else None
    else if not st.arrived.(c) then Some Barrier_arrive
    else None
  | Done_ -> None

(* Functional update: copy every mutable component, mutate, return. *)
let dup st =
  {
    st with
    pcs = Array.copy st.pcs;
    hdr = Array.copy st.hdr;
    busy = Array.copy st.busy;
    arrived = Array.copy st.arrived;
    forwarded = Array.copy st.forwarded;
    copies = Array.copy st.copies;
  }

let apply g m st ~core:c action =
  let n = Array.length st.pcs in
  match (action, st.pcs.(c)) with
  | Acquire_scan, pc_before ->
    if st.hdr.(c) <> 0 then
      Error
        (viol Lock_order
           "core %d requested the scan lock while holding header lock %d \
            (scan < header < free)"
           c st.hdr.(c))
    else if st.free_owner = c then
      Error
        (viol Lock_order
           "core %d requested the scan lock while holding the free lock" c)
    else begin
      let s = dup st in
      s.pcs.(c) <- Have_scan;
      ignore pc_before;
      Ok { s with scan_owner = c }
    end
  | Check_work, Have_scan -> (
    match m with
    | Fifo_reorder when List.length st.fifo >= 2 ->
      (* The mutated FIFO serves the youngest pending push. *)
      let front = List.hd st.fifo in
      let back = List.nth st.fifo (List.length st.fifo - 1) in
      Error
        (viol Fifo_order "worklist popped %d but %d was pushed first" back
           front)
    | Scan_past_free when st.fifo = [] ->
      Error
        (viol Scan_protocol
           "core %d grabbed from an empty worklist: scan %d would pass free %d"
           c (st.scan + 1) st.free)
    | _ -> (
      match st.fifo with
      | o :: rest ->
        let s = dup st in
        s.busy.(c) <- true;
        s.pcs.(c) <-
          (match m with
          | Release_scan_early -> Unlock_scan (To_advance o)
          | _ -> Unlock_scan (To_scan o));
        Ok
          {
            s with
            fifo = rest;
            scan = (match m with Release_scan_early -> st.scan | _ -> st.scan + 1);
          }
      | [] ->
        let s = dup st in
        s.pcs.(c) <-
          (if none_busy_except st c then Unlock_scan To_barrier
           else Unlock_scan To_idle);
        Ok s))
  | Release_scan, Unlock_scan k ->
    let s = dup st in
    s.pcs.(c) <-
      (match k with
      | To_idle -> Idle
      | To_barrier -> At_barrier
      | To_scan o -> Scanning (o, 0)
      | To_advance o -> Advance_nolock o);
    Ok { s with scan_owner = -1 }
  | Advance_scan_nolock, Advance_nolock _ ->
    (* Always a violation: the lock was released one step earlier. *)
    Error
      (viol Scan_protocol
         "core %d advanced scan without holding the scan lock" c)
  | Read_child o, Scanning (g_, i) ->
    let s = dup st in
    (* The pointer-update store into [g_]'s copy is covered by the grab's
       range ownership; only the child's forwarding state matters here. *)
    s.pcs.(c) <-
      (if st.forwarded.(o - 1) then Scanning (g_, i + 1)
       else Lock_pending (g_, i, o));
    Ok s
  | Poll_child _, Scanning _ ->
    (* Stuck_child demo: the broken skip never advances the slot. *)
    Ok st
  | Acquire_header o, Lock_pending (g_, i, _) ->
    let s = dup st in
    if m <> Skip_header_lock then s.hdr.(c) <- o;
    s.pcs.(c) <- Locked_header (g_, i, o);
    Ok s
  | Recheck o, Locked_header (g_, i, _) -> (
    match m with
    | Double_evacuate ->
      (* The locked re-check was deleted: proceed to copy regardless. *)
      let s = dup st in
      s.pcs.(c) <- Want_free (g_, i, o);
      Ok s
    | Lockset_race when st.forwarded.(o - 1) && List.mem o st.fifo ->
      (* The fix-up races with the winner's claim-protected header
         stores only while the copy is still pending scan: once a
         scanner grabs it, ownership has legally handed over and the
         mutant's store lands in the new owner's epoch. Firing only
         inside the window keeps every counterexample dynamically
         observable (the replayed Eraser check sees the same race). *)
      Error
        (viol Protection
           "core %d lost the evacuation race for object %d and patched the \
            winner's copy under a header lock the copy's words are not \
            protected by"
           c o)
    | _ ->
      let s = dup st in
      s.pcs.(c) <-
        (if st.forwarded.(o - 1) then Unlock_header (g_, i + 1)
         else Want_free (g_, i, o));
      Ok s)
  | Acquire_free, Want_free (g_, i, o) ->
    let s = dup st in
    s.pcs.(c) <- Have_free (g_, i, o);
    Ok { s with free_owner = c }
  | Claim_free o, Have_free (g_, i, _) ->
    let s = dup st in
    s.copies.(o - 1) <- st.copies.(o - 1) + 1;
    s.pcs.(c) <- Unlock_free (g_, i, o);
    Ok { s with free = st.free + 1; fifo = st.fifo @ [ o ] }
  | Release_free, Unlock_free (g_, i, o) ->
    let s = dup st in
    s.pcs.(c) <- Copying (g_, i, o);
    Ok { s with free_owner = -1 }
  | Copy_words o, Copying (g_, i, _) -> (
    match (m, victim_of st ~core:c) with
    | Unprotected_store, Some v ->
      Error
        (viol Protection
           "core %d blackened payload words of object %d's copy while \
            another core owns the claim"
           c v)
    | _ ->
      let s = dup st in
      s.pcs.(c) <- Installing (g_, i, o);
      Ok s)
  | Install_forward o, Installing (g_, i, _) ->
    let target = if m = Forward_wrong_object then (o mod g.n_objects) + 1 else o in
    if st.hdr.(c) <> target then
      Error
        (viol Forward_unlocked
           "core %d installed forwarding for object %d without holding its \
            header lock"
           c target)
    else if st.forwarded.(target - 1) then
      Error (viol Forward_once "second forwarding install for object %d" target)
    else begin
      let s = dup st in
      s.forwarded.(target - 1) <- true;
      s.pcs.(c) <- Unlock_header (g_, i + 1);
      Ok s
    end
  | Release_header _, Unlock_header (g_, i') ->
    let s = dup st in
    s.hdr.(c) <- 0;
    s.pcs.(c) <- Scanning (g_, i');
    Ok s
  | Finish_object _, Scanning _ ->
    let s = dup st in
    s.busy.(c) <- false;
    s.pcs.(c) <- Idle;
    Ok s
  | Barrier_arrive, At_barrier ->
    if m = Lost_core && c = n - 1 then begin
      (* The lost core wanders off without arriving; the others block. *)
      let s = dup st in
      s.pcs.(c) <- Done_;
      Ok s
    end
    else if st.release_count > 0 && st.arrived.(c) then begin
      let s = dup st in
      s.arrived.(c) <- false;
      s.pcs.(c) <- Done_;
      Ok { s with release_count = st.release_count - 1 }
    end
    else if st.scan_owner = c || st.free_owner = c || st.hdr.(c) <> 0 then
      Error (viol Locks_at_barrier "core %d arrived at the barrier holding locks" c)
    else if m = Barrier_skew_run && arrived_count st + 1 < n then
      Error
        (viol Barrier_skew
           "core %d passed the barrier while %d cores had not arrived" c
           (n - arrived_count st - 1))
    else begin
      let s = dup st in
      s.arrived.(c) <- true;
      Ok
        {
          s with
          release_count = (if arrived_count st + 1 = n then n else 0);
        }
    end
  | a, pc ->
    invalid_arg
      (Printf.sprintf "Proto.apply: action %s disagrees with pc (core %d, %s)"
         (action_name a) c
         (match pc with Done_ -> "done" | _ -> "other"))

let invariant m st =
  let bad = ref None in
  Array.iteri
    (fun c1 a1 ->
      if a1 <> 0 then
        Array.iteri
          (fun c2 a2 ->
            if c2 > c1 && a2 = a1 && !bad = None then
              bad :=
                Some
                  (viol Header_mutex
                     "cores %d and %d both hold header lock %d" c1 c2 a1))
          st.hdr)
    st.hdr;
  match !bad with
  | Some _ as v -> v
  | None ->
    if m = Correct && st.free - st.scan <> List.length st.fifo then
      Some
        (viol Scan_protocol
           "scan/free/worklist imbalance: free %d - scan %d <> %d pending"
           st.free st.scan (List.length st.fifo))
    else None

let quiescence g st =
  let reach = reachable g in
  let bad = ref None in
  let fail c fmt = Printf.ksprintf (fun d -> if !bad = None then bad := Some { vcheck = c; vdetail = d }) fmt in
  if st.fifo <> [] then fail Quiescence "worklist not drained at quiescence";
  if st.scan <> st.free then
    fail Quiescence "scan %d did not meet free %d at quiescence" st.scan st.free;
  if st.scan_owner <> -1 || st.free_owner <> -1 then
    fail Quiescence "a register lock is still held at quiescence";
  Array.iteri
    (fun c a -> if a <> 0 then fail Quiescence "core %d still holds header lock %d" c a)
    st.hdr;
  for o = 1 to g.n_objects do
    if reach.(o - 1) then begin
      if not st.forwarded.(o - 1) then fail Quiescence "lost object %d (never evacuated)" o;
      if st.copies.(o - 1) <> 1 then
        fail Quiescence "object %d evacuated %d times" o st.copies.(o - 1)
    end
    else if st.forwarded.(o - 1) || st.copies.(o - 1) <> 0 then
      fail Quiescence "resurrected garbage object %d" o
  done;
  !bad
