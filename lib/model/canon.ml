(* Core-symmetric state encoding: one fixed-width block per core, global
   tail free of core indices, canonical form = sorted blocks. *)

open Proto

let block_width = 6

let cont_code = function
  | To_idle -> (0, 0)
  | To_barrier -> (1, 0)
  | To_scan o -> (2, o)
  | To_advance o -> (3, o)

let cont_of_code a b =
  match a with
  | 0 -> To_idle
  | 1 -> To_barrier
  | 2 -> To_scan b
  | 3 -> To_advance b
  | _ -> invalid_arg "Canon.decode: bad continuation"

let pc_code = function
  | Idle -> (0, 0, 0, 0)
  | Have_scan -> (1, 0, 0, 0)
  | Unlock_scan k ->
    let a, b = cont_code k in
    (2, a, b, 0)
  | Advance_nolock o -> (3, o, 0, 0)
  | Scanning (g, i) -> (4, g, i, 0)
  | Lock_pending (g, i, o) -> (5, g, i, o)
  | Locked_header (g, i, o) -> (6, g, i, o)
  | Want_free (g, i, o) -> (7, g, i, o)
  | Have_free (g, i, o) -> (8, g, i, o)
  | Unlock_free (g, i, o) -> (9, g, i, o)
  | Copying (g, i, o) -> (10, g, i, o)
  | Installing (g, i, o) -> (11, g, i, o)
  | Unlock_header (g, i) -> (12, g, i, 0)
  | At_barrier -> (13, 0, 0, 0)
  | Done_ -> (14, 0, 0, 0)

let pc_of_code t p1 p2 p3 =
  match t with
  | 0 -> Idle
  | 1 -> Have_scan
  | 2 -> Unlock_scan (cont_of_code p1 p2)
  | 3 -> Advance_nolock p1
  | 4 -> Scanning (p1, p2)
  | 5 -> Lock_pending (p1, p2, p3)
  | 6 -> Locked_header (p1, p2, p3)
  | 7 -> Want_free (p1, p2, p3)
  | 8 -> Have_free (p1, p2, p3)
  | 9 -> Unlock_free (p1, p2, p3)
  | 10 -> Copying (p1, p2, p3)
  | 11 -> Installing (p1, p2, p3)
  | 12 -> Unlock_header (p1, p2)
  | 13 -> At_barrier
  | 14 -> Done_
  | _ -> invalid_arg "Canon.decode: bad pc tag"

let block st c =
  let t, p1, p2, p3 = pc_code st.pcs.(c) in
  let flags =
    (if st.busy.(c) then 1 else 0)
    lor (if st.arrived.(c) then 2 else 0)
    lor (if st.scan_owner = c then 4 else 0)
    lor if st.free_owner = c then 8 else 0
  in
  let b = Bytes.create block_width in
  Bytes.set b 0 (Char.chr t);
  Bytes.set b 1 (Char.chr p1);
  Bytes.set b 2 (Char.chr p2);
  Bytes.set b 3 (Char.chr p3);
  Bytes.set b 4 (Char.chr st.hdr.(c));
  Bytes.set b 5 (Char.chr flags);
  Bytes.unsafe_to_string b

let encode_with blocks st =
  let n = Array.length st.pcs in
  let k = Array.length st.forwarded in
  let buf = Buffer.create (8 + (block_width * n) + (2 * k)) in
  Buffer.add_char buf (Char.chr n);
  Buffer.add_char buf (Char.chr k);
  Array.iter (Buffer.add_string buf) blocks;
  Buffer.add_char buf (Char.chr st.release_count);
  Buffer.add_char buf (Char.chr st.scan);
  Buffer.add_char buf (Char.chr st.free);
  Buffer.add_char buf (Char.chr (List.length st.fifo));
  List.iter (fun o -> Buffer.add_char buf (Char.chr o)) st.fifo;
  let fwd = ref 0 and nbits = ref 0 in
  for o = 0 to k - 1 do
    if st.forwarded.(o) then fwd := !fwd lor (1 lsl !nbits);
    incr nbits;
    if !nbits = 8 || o = k - 1 then begin
      Buffer.add_char buf (Char.chr !fwd);
      fwd := 0;
      nbits := 0
    end
  done;
  Array.iter (fun cnt -> Buffer.add_char buf (Char.chr cnt)) st.copies;
  Buffer.contents buf

let encode st = encode_with (Array.init (Array.length st.pcs) (block st)) st

let decode s =
  let pos = ref 0 in
  let byte () =
    if !pos >= String.length s then invalid_arg "Canon.decode: truncated key";
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let n = byte () in
  let k = byte () in
  let pcs = Array.make n Idle in
  let hdr = Array.make n 0 in
  let busy = Array.make n false in
  let arrived = Array.make n false in
  let scan_owner = ref (-1) and free_owner = ref (-1) in
  for c = 0 to n - 1 do
    let t = byte () in
    let p1 = byte () in
    let p2 = byte () in
    let p3 = byte () in
    pcs.(c) <- pc_of_code t p1 p2 p3;
    hdr.(c) <- byte ();
    let flags = byte () in
    busy.(c) <- flags land 1 <> 0;
    arrived.(c) <- flags land 2 <> 0;
    if flags land 4 <> 0 then scan_owner := c;
    if flags land 8 <> 0 then free_owner := c
  done;
  let release_count = byte () in
  let scan = byte () in
  let free = byte () in
  let fifo_len = byte () in
  let fifo = List.init fifo_len (fun _ -> byte ()) in
  let forwarded = Array.make k false in
  let o = ref 0 in
  while !o < k do
    let bits = byte () in
    let stop = min (k - 1) (!o + 7) in
    for j = !o to stop do
      forwarded.(j) <- bits land (1 lsl (j - !o)) <> 0
    done;
    o := stop + 1
  done;
  let copies = Array.init k (fun _ -> byte ()) in
  if !pos <> String.length s then invalid_arg "Canon.decode: trailing bytes";
  {
    pcs;
    hdr;
    busy;
    arrived;
    release_count;
    scan_owner = !scan_owner;
    free_owner = !free_owner;
    scan;
    free;
    fifo;
    forwarded;
    copies;
  }

let apply_perm st perm =
  let n = Array.length st.pcs in
  let inv = Array.make n 0 in
  Array.iteri (fun j c -> inv.(c) <- j) perm;
  {
    st with
    pcs = Array.init n (fun j -> st.pcs.(perm.(j)));
    hdr = Array.init n (fun j -> st.hdr.(perm.(j)));
    busy = Array.init n (fun j -> st.busy.(perm.(j)));
    arrived = Array.init n (fun j -> st.arrived.(perm.(j)));
    scan_owner = (if st.scan_owner = -1 then -1 else inv.(st.scan_owner));
    free_owner = (if st.free_owner = -1 then -1 else inv.(st.free_owner));
  }

let sort_perm blocks =
  let n = Array.length blocks in
  let perm = Array.init n (fun c -> c) in
  Array.sort
    (fun a b ->
      let cmp = compare blocks.(a) blocks.(b) in
      if cmp <> 0 then cmp else compare a b)
    perm;
  perm

let canon st =
  let blocks = Array.init (Array.length st.pcs) (block st) in
  apply_perm st (sort_perm blocks)

let key st =
  let blocks = Array.init (Array.length st.pcs) (block st) in
  let perm = sort_perm blocks in
  encode_with (Array.init (Array.length perm) (fun j -> blocks.(perm.(j)))) st

let canon_core_map st =
  let blocks = Array.init (Array.length st.pcs) (block st) in
  let perm = sort_perm blocks in
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun j c -> inv.(c) <- j) perm;
  inv
