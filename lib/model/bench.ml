(* The model-checking matrix: see bench.mli. Everything here is
   deterministic, so the gate strings are compared for exact equality
   against the committed BENCH_model.json. *)

module Diag = Hsgc_sanitizer.Diag

type verify_point = {
  vgraph : string;
  objects : int;
  cores : int;
  por : bool;
  symmetry : bool;
  outcome : string;
  states : int;
  transitions : int;
  slept : int;
  depth : int;
}

type mutant_point = {
  mname : string;
  mgraph : string;
  verdict : string;
  sched_len : int;
  replay_checks : string list;
  expected : string;
  hit : bool;
}

type suite = {
  verify : verify_point list;
  cross_checks : int;
  cross_ok : bool;
  baseline_silent : bool;
  mutants : mutant_point list;
}

let graph name ~objects =
  match Proto.graph_of_string name ~objects with
  | Ok g -> g
  | Error m -> invalid_arg m

let combo_name ~por ~symmetry =
  match (por, symmetry) with
  | true, true -> "por+sym"
  | true, false -> "por"
  | false, true -> "sym"
  | false, false -> "none"

let cfg_of name ~objects ~cores ~por ~symmetry mutation =
  {
    (Explore.default_config ~graph:(graph name ~objects) ~n_cores:cores) with
    Explore.mutation;
    por;
    symmetry;
  }

let verify_point ?progress name ~objects ~cores ~por ~symmetry =
  let cfg = cfg_of name ~objects ~cores ~por ~symmetry Proto.Correct in
  let o = Explore.run cfg in
  let s = Explore.outcome_stats o in
  let p =
    {
      vgraph = Printf.sprintf "%s%d" name objects;
      objects;
      cores;
      por;
      symmetry;
      outcome = Explore.outcome_name o;
      states = s.Explore.states;
      transitions = s.Explore.transitions;
      slept = s.Explore.slept;
      depth = s.Explore.max_depth;
    }
  in
  (match progress with
  | Some f ->
    f
      (Printf.sprintf "verify %s/%dc %-7s %-10s %d states" p.vgraph cores
         (combo_name ~por ~symmetry) p.outcome p.states)
  | None -> ());
  p

(* Small configurations explored under all four reduction combinations:
   the verdict must agree everywhere, and the state count must not
   depend on POR (sleep sets prune transitions, never states). *)
let cross_configs = [ ("diamond", 4, 2); ("twin", 4, 2); ("chain", 4, 2) ]

(* Larger runs with both reductions on — the committed state counts. *)
let verified_configs =
  [
    ("diamond", 4, 3); ("diamond", 5, 3); ("twin", 4, 3); ("twin", 6, 3);
    ("fork", 5, 3); ("garbage", 4, 3); ("chain", 6, 3); ("diamond", 4, 4);
  ]

let mutant_point ?progress (e : Mutation.entry) =
  let cores = 2 and objects = 4 in
  let cfg = cfg_of e.Mutation.graph ~objects ~cores ~por:true ~symmetry:true
      e.Mutation.mutation
  in
  let o = Explore.run cfg in
  let verdict = Explore.outcome_name o in
  let p =
    match (o, e.Mutation.dynamic_check) with
    | Explore.Violation (v, sched, _), Some expected ->
      let res = Replay.run cfg sched in
      {
        mname = e.Mutation.name;
        mgraph = Printf.sprintf "%s%d" e.Mutation.graph objects;
        verdict;
        sched_len = List.length sched;
        replay_checks = res.Replay.checks;
        expected = Diag.check_name expected;
        hit =
          v.Proto.vcheck = e.Mutation.model_check && Replay.hits res expected;
      }
    | _, _ ->
      let hit =
        match (e.Mutation.mutation, o) with
        | Proto.Lost_core, Explore.Deadlock _ -> true
        | Proto.Stuck_child, Explore.Livelock _ -> true
        | _ -> false
      in
      let sched_len =
        match o with
        | Explore.Deadlock (s, _) | Explore.Livelock (s, _) -> List.length s
        | _ -> 0
      in
      {
        mname = e.Mutation.name;
        mgraph = Printf.sprintf "%s%d" e.Mutation.graph objects;
        verdict;
        sched_len;
        replay_checks = [];
        expected = "-";
        hit;
      }
  in
  (match progress with
  | Some f ->
    f
      (Printf.sprintf "mutant %-26s %-28s %s" p.mname p.verdict
         (if p.hit then "ok" else "MISS"))
  | None -> ());
  p

let run ?progress () =
  let cross =
    List.concat_map
      (fun (name, objects, cores) ->
        List.map
          (fun (por, symmetry) ->
            verify_point ?progress name ~objects ~cores ~por ~symmetry)
          [ (true, true); (false, true); (true, false); (false, false) ])
      cross_configs
  in
  (* POR must not change the verdict or the state count; symmetry must
     not change the verdict. *)
  let cross_checks = ref 0 in
  let cross_ok = ref true in
  List.iter
    (fun (name, objects, cores) ->
      let find ~por ~symmetry =
        List.find
          (fun p ->
            p.vgraph = Printf.sprintf "%s%d" name objects
            && p.cores = cores && p.por = por && p.symmetry = symmetry)
          cross
      in
      List.iter
        (fun symmetry ->
          incr cross_checks;
          let a = find ~por:true ~symmetry and b = find ~por:false ~symmetry in
          if a.states <> b.states || a.outcome <> b.outcome then
            cross_ok := false)
        [ true; false ];
      incr cross_checks;
      let a = find ~por:false ~symmetry:true
      and b = find ~por:false ~symmetry:false in
      if a.outcome <> b.outcome then cross_ok := false)
    cross_configs;
  let verified =
    List.map
      (fun (name, objects, cores) ->
        verify_point ?progress name ~objects ~cores ~por:true ~symmetry:true)
      verified_configs
  in
  let baseline_silent =
    let cfg = cfg_of "diamond" ~objects:4 ~cores:3 ~por:true ~symmetry:true
        Proto.Correct
    in
    let res = Replay.run cfg (Explore.fair_schedule cfg) in
    (match progress with
    | Some f ->
      f
        (Printf.sprintf "baseline replay: %s"
           (if res.Replay.flagged then
              "FLAGGED " ^ String.concat "," res.Replay.checks
            else "silent"))
    | None -> ());
    not res.Replay.flagged
  in
  let mutants = List.map (mutant_point ?progress) Mutation.all in
  {
    verify = cross @ verified;
    cross_checks = !cross_checks;
    cross_ok = !cross_ok;
    baseline_silent;
    mutants;
  }

let all_ok s =
  s.cross_ok && s.baseline_silent
  && List.for_all (fun p -> p.outcome = "verified") s.verify
  && List.for_all (fun p -> p.hit) s.mutants

(* --- gates ---------------------------------------------------------- *)

let verify_gate p =
  Printf.sprintf "verify %s/%dc %s: %s states=%d trans=%d slept=%d depth=%d"
    p.vgraph p.cores
    (combo_name ~por:p.por ~symmetry:p.symmetry)
    p.outcome p.states p.transitions p.slept p.depth

let mutant_gate p =
  Printf.sprintf "mutant %s @%s: %s len=%d replay=%s expect=%s %s" p.mname
    p.mgraph p.verdict p.sched_len
    (match p.replay_checks with [] -> "-" | l -> String.concat "," l)
    p.expected
    (if p.hit then "hit" else "miss")

let gates s =
  List.map verify_gate s.verify
  @ [
      Printf.sprintf "cross-validation: %d checks %s" s.cross_checks
        (if s.cross_ok then "consistent" else "INCONSISTENT");
      Printf.sprintf "baseline replay: %s"
        (if s.baseline_silent then "silent" else "flagged");
    ]
  @ List.map mutant_gate s.mutants

let summary s =
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      Buffer.add_string buf g;
      Buffer.add_char buf '\n')
    (gates s);
  Buffer.add_string buf
    (Printf.sprintf "model matrix: %s\n"
       (if all_ok s then "all ok" else "FAILURES"));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json s =
  let verify_json p =
    Printf.sprintf
      {|    {"graph": "%s", "cores": %d, "por": %b, "symmetry": %b, "outcome": "%s", "states": %d, "transitions": %d, "slept": %d, "depth": %d, "gate": "%s"}|}
      (json_escape p.vgraph) p.cores p.por p.symmetry (json_escape p.outcome)
      p.states p.transitions p.slept p.depth
      (json_escape (verify_gate p))
  in
  let mutant_json p =
    Printf.sprintf
      {|    {"mutant": "%s", "graph": "%s", "verdict": "%s", "schedule_len": %d, "replay": [%s], "expected": "%s", "hit": %b, "gate": "%s"}|}
      (json_escape p.mname) (json_escape p.mgraph) (json_escape p.verdict)
      p.sched_len
      (String.concat ", "
         (List.map (fun c -> Printf.sprintf "\"%s\"" (json_escape c))
            p.replay_checks))
      (json_escape p.expected) p.hit
      (json_escape (mutant_gate p))
  in
  Printf.sprintf
    {|{
  "benchmark": "hsgc protocol model checker",
  "verify_points": %d,
  "verified": %d,
  "cross_checks": %d,
  "cross_ok": %b,
  "baseline_replay_silent": %b,
  "mutant_points": %d,
  "mutants_hit": %d,
  "all_ok": %b,
  "verify": [
%s
  ],
  "mutants": [
%s
  ]
}
|}
    (List.length s.verify)
    (List.length (List.filter (fun p -> p.outcome = "verified") s.verify))
    s.cross_checks s.cross_ok s.baseline_silent
    (List.length s.mutants)
    (List.length (List.filter (fun p -> p.hit) s.mutants))
    (all_ok s)
    (String.concat ",\n" (List.map verify_json s.verify))
    (String.concat ",\n" (List.map mutant_json s.mutants))

(* Pull every "gate" string out of a committed BENCH_model.json without
   a JSON parser: scan for the key, then read the escaped string. *)
let gates_of_baseline text =
  let out = ref [] in
  let key = {|"gate": "|} in
  let klen = String.length key in
  let n = String.length text in
  let i = ref 0 in
  while !i + klen <= n do
    if String.sub text !i klen = key then begin
      let buf = Buffer.create 64 in
      let j = ref (!i + klen) in
      let stop = ref false in
      while (not !stop) && !j < n do
        (match text.[!j] with
        | '"' -> stop := true
        | '\\' when !j + 1 < n ->
          incr j;
          Buffer.add_char buf
            (match text.[!j] with 'n' -> '\n' | c -> c)
        | c -> Buffer.add_char buf c);
        incr j
      done;
      out := Buffer.contents buf :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

let check ~baseline s =
  let want = gates_of_baseline baseline in
  let got = List.filter (fun g ->
      String.length g >= 6
      && (String.sub g 0 6 = "verify" || String.sub g 0 6 = "mutant"))
      (gates s)
  in
  if want = [] then Error [ "baseline contains no gate strings" ]
  else begin
    let missing = List.filter (fun g -> not (List.mem g got)) want in
    let extra = List.filter (fun g -> not (List.mem g want)) got in
    let errs =
      List.map (fun g -> Printf.sprintf "baseline gate not reproduced: %s" g)
        missing
      @ List.map (fun g -> Printf.sprintf "gate not in baseline: %s" g) extra
      @ (if all_ok s then [] else [ "model matrix has failures" ])
    in
    if errs = [] then Ok () else Error errs
  end
