(* Scaling study: how collection time scales with coprocessor cores for
   two opposite workloads — the paper's headline experiment (Figure 5) on
   a wide graph (db) and on a linear one (search).

     dune exec examples/scaling_study.exe *)

module Experiment = Hsgc_core.Experiment
module Workloads = Hsgc_objgraph.Workloads
module Table = Hsgc_util.Table

let study workload =
  Printf.printf "workload: %s — %s\n" workload.Workloads.name
    workload.Workloads.description;
  let points =
    Experiment.sweep ~verify:true ~scale:0.5 ~seeds:[| 42; 1042 |] workload
  in
  let speedups = Experiment.speedups points in
  let rows =
    List.map2
      (fun p (_, s) ->
        [
          string_of_int p.Experiment.n_cores;
          Printf.sprintf "%.0f" p.Experiment.cycles;
          Table.fixed 2 s;
          Table.pct p.Experiment.empty_frac;
        ])
      points speedups
  in
  Table.print
    ~header:[ "cores"; "cycles"; "speedup"; "worklist empty" ]
    ~rows;
  print_newline ()

let () =
  print_endline
    "Every collection below is verified against a pre-GC snapshot\n\
     (graph isomorphism + compaction), averaged over two seeds.\n";
  study Workloads.db;
  study Workloads.search;
  print_endline
    "Reading: db's wide object graph keeps the single shared worklist\n\
     full, so object-level distribution scales almost linearly to 8\n\
     cores; search's linked list admits no object-level parallelism at\n\
     all — its worklist is empty nearly every cycle at >= 4 cores, so\n\
     extra cores only watch."
