(* Workload explorer: what the eight synthetic benchmark graphs look
   like, and how each one's shape shows up in the collector's counters.

     dune exec examples/workload_explorer.exe *)

module Plan = Hsgc_objgraph.Plan
module Workloads = Hsgc_objgraph.Workloads
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters
module Table = Hsgc_util.Table

let graph_shape plan =
  (* live objects, mean size, max fan-out, max in-degree (sharing) *)
  let n = Plan.n_objects plan in
  let indeg = Array.make n 0 in
  let seen = Array.make n false in
  let live = ref 0 and words = ref 0 and max_pi = ref 0 in
  let rec visit id =
    if id >= 0 && not seen.(id) then begin
      seen.(id) <- true;
      incr live;
      words := !words + 2 + Plan.pi_of plan id + Plan.delta_of plan id;
      max_pi := max !max_pi (Plan.pi_of plan id);
      for s = 0 to Plan.pi_of plan id - 1 do
        let c = Plan.child_of plan id s in
        if c >= 0 then begin
          indeg.(c) <- indeg.(c) + 1;
          visit c
        end
      done
    end
  in
  Array.iter visit (Plan.roots plan);
  let max_indeg = Array.fold_left max 0 indeg in
  (!live, !words, !max_pi, max_indeg)

let () =
  print_endline "Graph shape of each synthetic workload (at scale 0.3):\n";
  let header =
    [
      "workload"; "live objs"; "live words"; "mean size"; "max fan-out";
      "max sharing";
    ]
  in
  let plans =
    List.map (fun w -> (w, w.Workloads.build ~scale:0.3 ~seed:42)) Workloads.all
  in
  let rows =
    List.map
      (fun (w, plan) ->
        let live, words, max_pi, max_indeg = graph_shape plan in
        [
          w.Workloads.name;
          string_of_int live;
          string_of_int words;
          Printf.sprintf "%.1f" (float_of_int words /. float_of_int (max 1 live));
          string_of_int max_pi;
          string_of_int max_indeg;
        ])
      plans
  in
  Table.print ~header ~rows;
  print_newline ();
  print_endline
    "...and how each shape shows up when collected on 16 cores (dominant\n\
     stall category, mean per core):\n";
  let header = [ "workload"; "cycles"; "speedup vs 1"; "dominant stall"; "share" ] in
  let rows =
    List.map
      (fun (w, _plan) ->
        let collect n =
          let heap = Workloads.build_heap ~scale:0.3 ~seed:42 w in
          Coprocessor.collect (Coprocessor.config ~n_cores:n ()) heap
        in
        let s1 = collect 1 and s16 = collect 16 in
        let mean = Coprocessor.stalls_mean_per_core s16 in
        let dominant, amount =
          List.fold_left
            (fun (bs, bv) s ->
              let v = Counters.get mean s in
              if v > bv then (s, v) else (bs, bv))
            (Counters.Scan_lock, -1)
            Counters.all_stalls
        in
        [
          w.Workloads.name;
          string_of_int s16.Coprocessor.total_cycles;
          Printf.sprintf "%.2fx"
            (float_of_int s1.Coprocessor.total_cycles
            /. float_of_int s16.Coprocessor.total_cycles);
          Counters.stall_name dominant;
          Table.pct
            (float_of_int amount /. float_of_int s16.Coprocessor.total_cycles);
        ])
      plans
  in
  Table.print ~header ~rows;
  print_newline ();
  print_endline
    "Reading: javac's hot shared symbols surface as header-lock stalls;\n\
     cup's enormous gray backlog overflows the header FIFO and turns\n\
     into scan-lock stalls; the data-heavy workloads stall on body\n\
     loads; the linear ones barely speed up at all."
