(* End-to-end view: what parallel collection buys an application.

   The coprocessor stops the main processor for each collection cycle
   (paper Section V-B), so application-visible cost = sum of GC pauses.
   This example runs a mutator that allocates continuously, collects
   whenever the semispace fills, and accounts application time vs. GC
   time for several coprocessor widths.

     dune exec examples/pause_accounting.exe *)

module Heap = Hsgc_heap.Heap
module Semispace = Hsgc_heap.Semispace
module Workloads = Hsgc_objgraph.Workloads
module Mutator = Hsgc_objgraph.Mutator
module Coprocessor = Hsgc_coproc.Coprocessor
module Verify = Hsgc_heap.Verify
module Rng = Hsgc_util.Rng
module Table = Hsgc_util.Table

(* Main-processor cost of one allocation, in clock cycles: covers the
   application work between allocations (the paper's 25 MHz RISC runs
   the program; we only need a plausible ratio of app work to heap
   churn). *)
let app_cycles_per_alloc = 60
let target_allocs = 60_000
let churn_quantum = 500

let run ~n_cores =
  let heap = Workloads.build_heap ~scale:0.6 ~seed:42 Workloads.javacc in
  let mutator = Mutator.create heap (Rng.create 7) in
  let cfg = Coprocessor.config ~n_cores () in
  let gc_cycles = ref 0 in
  let max_pause = ref 0 in
  let gcs = ref 0 in
  let rec fill () =
    if Mutator.allocated mutator >= target_allocs then ()
    else
      match Mutator.churn mutator ~allocs:churn_quantum with
      | `Ok -> fill ()
      | `Heap_full ->
        let pre = Verify.snapshot heap in
        let stats = Coprocessor.collect cfg heap in
        (match Verify.check_collection ~pre heap with
        | Ok () -> ()
        | Error f ->
          Format.printf "verification FAILED: %a@." Verify.pp_failure f;
          exit 1);
        gc_cycles := !gc_cycles + stats.Coprocessor.total_cycles;
        max_pause := max !max_pause stats.Coprocessor.total_cycles;
        incr gcs;
        let space = Heap.from_space heap in
        if Semispace.available space < Semispace.words space / 10 then
          (* The live set has grown to (nearly) fill the heap: stop
             rather than thrash. *)
          ()
        else fill ()
  in
  fill ();
  let app = Mutator.allocated mutator * app_cycles_per_alloc in
  (n_cores, !gcs, !gc_cycles, !max_pause, app)

let () =
  Printf.printf
    "Mutator: javacc-shaped heap, ~%d allocations (several semispace fills) at %d app cycles each;\n\
     a collection runs whenever the semispace fills. All collections are\n\
     verified.\n\n"
    target_allocs app_cycles_per_alloc;
  let rows =
    List.map
      (fun n_cores ->
        let n, gcs, gc, pause, app = run ~n_cores in
        [
          string_of_int n;
          string_of_int gcs;
          string_of_int gc;
          string_of_int pause;
          Table.pct (float_of_int gc /. float_of_int (gc + app));
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.print
    ~header:
      [ "GC cores"; "collections"; "GC cycles"; "worst pause"; "GC overhead" ]
    ~rows;
  print_newline ();
  print_endline
    "Reading: the mutator does identical work in every row; parallel\n\
     collection shrinks both the total GC overhead and the worst-case\n\
     pause by roughly the Figure-5 speedup of the workload's shape."
