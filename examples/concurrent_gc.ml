(* Concurrent collection: the coprocessor runs while the application
   keeps executing — the authors' announced next step (Sections V-B and
   VII), and the point of their whole research program: GC pauses of a
   couple hundred cycles instead of whole collection cycles.

     dune exec examples/concurrent_gc.exe *)

module Heap = Hsgc_heap.Heap
module Verify = Hsgc_heap.Verify
module Coprocessor = Hsgc_coproc.Coprocessor
module Concurrent = Hsgc_coproc.Concurrent
module Workloads = Hsgc_objgraph.Workloads
module Table = Hsgc_util.Table

let () =
  print_endline
    "Stop-the-world vs concurrent collection (8 GC cores; the mutator\n\
     performs one operation every 4 cycles while the collectors run).\n\
     In STW mode the application pause is the whole cycle; in concurrent\n\
     mode it is only the root phase, plus occasional read-barrier work.\n";
  let header =
    [
      "workload"; "STW pause"; "concurrent pause"; "cycle length";
      "barrier evacs"; "mutator ops during GC";
    ]
  in
  let rows =
    List.map
      (fun w ->
        (* stop-the-world reference *)
        let heap = Workloads.build_heap ~scale:0.5 ~seed:42 w in
        let stw = Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap in
        (* concurrent run, fully checked *)
        let heap = Workloads.build_heap ~scale:0.5 ~seed:42 w in
        let orig_roots = Array.length heap.Heap.roots in
        let pre = Verify.snapshot heap in
        let stats = Concurrent.collect (Concurrent.default_config ()) heap in
        let all = heap.Heap.roots in
        Heap.set_roots heap (Array.sub all 0 orig_roots);
        let iso = Verify.equal_snapshot pre (Verify.snapshot heap) in
        Heap.set_roots heap all;
        let ok =
          iso
          && Verify.check_space heap = Ok ()
          && Concurrent.check_new_objects heap stats = Ok ()
        in
        if not ok then failwith ("verification failed for " ^ w.Workloads.name);
        [
          w.Workloads.name;
          string_of_int stw.Coprocessor.total_cycles;
          string_of_int stats.Concurrent.pause_cycles;
          string_of_int stats.Concurrent.gc.Coprocessor.total_cycles;
          string_of_int stats.Concurrent.barrier_evacuations;
          string_of_int
            (stats.Concurrent.mutator_reads + stats.Concurrent.mutator_allocs);
        ])
      [ Workloads.db; Workloads.javac; Workloads.javacc; Workloads.search ]
  in
  Table.print ~header ~rows;
  print_newline ();
  print_endline
    "Every run is verified: the pre-existing graph is isomorphic to its\n\
     copy, the new space is contiguously well-formed, and every object\n\
     the mutator allocated mid-cycle survived with exactly the contents\n\
     written. The pause column is the paper's real-time story: hundreds\n\
     of cycles instead of hundreds of thousands."
