(* Latency study: the paper's counter-intuitive Figure 6 result — slower
   memory makes the coprocessor scale BETTER, because stalled cores leave
   bandwidth for the others and more cores are needed to saturate it.

     dune exec examples/latency_study.exe *)

module Experiment = Hsgc_core.Experiment
module Memsys = Hsgc_memsim.Memsys
module Workloads = Hsgc_objgraph.Workloads
module Table = Hsgc_util.Table

let sweep_with_extra extra =
  let mem = Memsys.with_extra_latency Memsys.default_config extra in
  Experiment.sweep ~scale:0.4 ~mem Workloads.db

let () =
  print_endline
    "GC speedup on the db workload as memory latency grows (the paper's\n\
     prototype memory is unrealistically fast relative to its 25 MHz\n\
     cores; Figure 6 adds 20 cycles to every access):\n";
  let extras = [ 0; 5; 20; 50 ] in
  let sweeps = List.map (fun e -> (e, sweep_with_extra e)) extras in
  let cores =
    match sweeps with
    | (_, points) :: _ -> List.map (fun p -> p.Experiment.n_cores) points
    | [] -> []
  in
  let header =
    "extra latency"
    :: List.map (fun c -> Printf.sprintf "%d cores" c) cores
  in
  let rows =
    List.map
      (fun (extra, points) ->
        Printf.sprintf "+%d cycles" extra
        :: List.map
             (fun (_, s) -> Table.fixed 2 s)
             (Experiment.speedups points))
      sweeps
  in
  Table.print ~header ~rows;
  print_newline ();
  (* And the absolute cost: latency hurts every configuration, it just
     hurts the single-core one the most. *)
  let rows =
    List.map
      (fun (extra, points) ->
        Printf.sprintf "+%d cycles" extra
        :: List.map (fun p -> Printf.sprintf "%.0f" p.Experiment.cycles) points)
      sweeps
  in
  print_endline "absolute collection cycles:";
  Table.print ~header ~rows;
  print_newline ();
  print_endline
    "Reading: speedup at 16 cores improves with latency (relative\n\
     scaling), while absolute collection time still grows — exactly the\n\
     paper's observation that higher latency leaves each core stalled\n\
     more, so more cores fit under the same memory bandwidth."
