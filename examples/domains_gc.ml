(* Real parallelism: the same fine-grained parallel copying algorithm,
   running on OCaml 5 domains with commodity synchronization (CAS +
   fetch-and-add + a lock-free shared worklist) instead of the simulated
   hardware synchronization block.

     dune exec examples/domains_gc.exe *)

module Workloads = Hsgc_objgraph.Workloads
module Verify = Hsgc_heap.Verify
module Parallel_copy = Hsgc_swgc.Parallel_copy
module Par = Hsgc_swgc.Par
module Table = Hsgc_util.Table

let () =
  Printf.printf
    "This machine recommends %d domain(s). The collector is correct at any\n\
     domain count; speedup needs real cores.\n\n"
    (Domain.recommended_domain_count ());
  let w = Workloads.javac in
  Printf.printf "workload: %s\n\n" w.Workloads.description;
  let header =
    [ "domains"; "live objects"; "wall time (ms)"; "CAS races lost"; "balance" ]
  in
  let rows =
    List.map
      (fun domains ->
        let heap = Workloads.build_heap ~scale:2.0 ~seed:42 w in
        let pre = Verify.snapshot heap in
        let stats = Parallel_copy.collect ~domains heap in
        (match Verify.check_collection ~pre heap with
        | Ok () -> ()
        | Error f ->
          Format.printf "verification FAILED at %d domains: %a@." domains
            Verify.pp_failure f;
          exit 1);
        (* Balance: share of objects scanned by the busiest domain
           (1/domains = perfect). *)
        let busiest =
          Array.fold_left max 0 stats.Parallel_copy.per_domain_objects
        in
        [
          string_of_int domains;
          string_of_int stats.Parallel_copy.live_objects;
          Printf.sprintf "%.2f" (1000.0 *. stats.Parallel_copy.elapsed_s);
          string_of_int stats.Parallel_copy.cas_races_lost;
          Table.pct
            (float_of_int busiest
            /. float_of_int (max 1 stats.Parallel_copy.live_objects));
        ])
      [ 1; 2; 4; 8 ]
  in
  Table.print ~header ~rows;
  print_newline ();
  print_endline
    "Every run is verified: the copied graph is isomorphic to the\n\
     original and the new space is contiguously compacted — regardless\n\
     of how the domains interleave. The object-by-object distribution\n\
     through one shared worklist keeps the balance column near\n\
     1/domains; what commodity hardware charges for it is the CAS/fence\n\
     traffic that the paper's synchronization block eliminates."
