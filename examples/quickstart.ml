(* Quickstart: build a heap by hand, collect it on the simulated
   coprocessor, and inspect the result.

     dune exec examples/quickstart.exe *)

module Heap = Hsgc_heap.Heap
module Verify = Hsgc_heap.Verify
module Coprocessor = Hsgc_coproc.Coprocessor
module Counters = Hsgc_coproc.Counters

let () =
  (* 1. A heap with two 4096-word semispaces. *)
  let heap = Heap.create ~semispace_words:4096 in

  (* 2. Allocate a little object graph: a list of three records, each
     carrying a string-ish payload, with the last record looping back to
     the first (the collector handles cycles). Objects are (π pointer
     slots, δ data words); alloc returns the object's address. *)
  let alloc pi delta =
    match Heap.alloc heap ~pi ~delta with
    | Some a -> a
    | None -> failwith "heap full"
  in
  let record i =
    let r = alloc 2 1 in
    (* slot 0 = next, slot 1 = payload *)
    let payload = alloc 0 3 in
    Heap.set_data heap r 0 i;
    Heap.set_pointer heap r 1 payload;
    for j = 0 to 2 do
      Heap.set_data heap payload j ((100 * i) + j)
    done;
    r
  in
  let r1 = record 1 and r2 = record 2 and r3 = record 3 in
  Heap.set_pointer heap r1 0 r2;
  Heap.set_pointer heap r2 0 r3;
  Heap.set_pointer heap r3 0 r1;
  (* ... and some garbage that must not survive. *)
  for _ = 1 to 10 do
    ignore (alloc 1 4)
  done;
  Heap.set_roots heap [| r1 |];

  Printf.printf "before GC: %d words allocated, %d words live\n"
    (Hsgc_heap.Semispace.used (Heap.from_space heap))
    (Heap.live_words heap);

  (* 3. Collect with a 4-core coprocessor. The pre-collection snapshot
     lets us verify the copy afterwards. *)
  let pre = Verify.snapshot heap in
  let stats = Coprocessor.collect (Coprocessor.config ~n_cores:4 ()) heap in

  Printf.printf "after GC:  %d objects / %d words survived, in %d clock cycles\n"
    stats.Coprocessor.live_objects stats.Coprocessor.live_words
    stats.Coprocessor.total_cycles;

  (* 4. Verify: the new space holds an isomorphic, compacted copy. *)
  (match Verify.check_collection ~pre heap with
  | Ok () -> print_endline "verification: graph isomorphic, heap compacted"
  | Error f -> Format.printf "verification FAILED: %a@." Verify.pp_failure f);

  (* 5. The stall counters are the paper's Table II columns. *)
  let mean = Coprocessor.stalls_mean_per_core stats in
  print_endline "stall cycles (mean per core):";
  List.iter
    (fun s -> Printf.printf "  %-20s %d\n" (Counters.stall_name s) (Counters.get mean s))
    Counters.all_stalls;

  (* 6. The heap is immediately usable again — allocate and re-collect. *)
  let extra = alloc 1 2 in
  Heap.set_pointer heap extra 0 heap.Heap.roots.(0);
  Heap.add_root heap extra;
  let pre = Verify.snapshot heap in
  let stats = Coprocessor.collect (Coprocessor.config ~n_cores:4 ()) heap in
  (match Verify.check_collection ~pre heap with
  | Ok () ->
    Printf.printf "second cycle: %d objects survive, still verified\n"
      stats.Coprocessor.live_objects
  | Error f -> Format.printf "second cycle FAILED: %a@." Verify.pp_failure f)
