(* gcsim — drive the GC-coprocessor simulator from the command line.

   Subcommands:
     gcsim list                         — available workloads
     gcsim run -w db -n 8               — one collection, full statistics
     gcsim sweep -w db                  — core-count sweep with speedups
     gcsim cycles -w db -n 8 -g 3       — repeated GC cycles with mutator churn
*)

module Workloads = Hsgc_objgraph.Workloads
module Mutator = Hsgc_objgraph.Mutator
module Coprocessor = Hsgc_coproc.Coprocessor
module Bsp = Hsgc_coproc.Bsp
module Banked = Hsgc_coproc.Banked
module Partition = Hsgc_sim.Partition
module Domain_pool = Hsgc_sim.Domain_pool
module Counters = Hsgc_coproc.Counters
module Trace = Hsgc_coproc.Trace
module Concurrent = Hsgc_coproc.Concurrent
module Memsys = Hsgc_memsim.Memsys
module Tracer = Hsgc_obs.Tracer
module Profiler = Hsgc_obs.Profiler
module Perfetto = Hsgc_obs.Perfetto
module Experiment = Hsgc_core.Experiment
module Chaos = Hsgc_core.Chaos
module Perf = Hsgc_core.Perf
module Report = Hsgc_core.Report
module Resume = Hsgc_core.Resume
module Checkpoint = Hsgc_checkpoint.Checkpoint
module Verify = Hsgc_heap.Verify
module Table = Hsgc_util.Table
module Rng = Hsgc_util.Rng
open Cmdliner

(* Distinct exit codes so scripts can tell a wrong answer from a hung
   machine: 3 = verification failure, 4 = watchdog stall diagnosis,
   5 = machine-sanitizer violation, 6 = corrupt or incompatible
   snapshot on --resume-from. *)
let exit_verify_failed = 3
let exit_stalled = 4
let exit_sanitizer = 5
let exit_snapshot = 6

let sanitize_conv =
  Arg.conv
    ( (fun s ->
        match Hsgc_sanitizer.Sanitizer.mode_of_string s with
        | Some m -> Ok m
        | None ->
          Error (`Msg (Printf.sprintf "bad sanitize mode %S (check|strict)" s))),
      fun ppf m ->
        Format.pp_print_string ppf (Hsgc_sanitizer.Sanitizer.mode_to_string m) )

let sanitize_arg =
  Arg.(
    value
    & opt ~vopt:Hsgc_sanitizer.Sanitizer.Check sanitize_conv
        Hsgc_sanitizer.Sanitizer.Off
    & info [ "sanitize" ] ~docv:"MODE"
        ~doc:
          "Attach the machine sanitizer (lockset race detection and protocol \
           linting over every simulated shared-memory access). Bare \
           $(b,--sanitize) records findings and exits with code 5 if any; \
           $(b,--sanitize=strict) aborts at the first violation.")

(* Integer argument converters that reject values Memsys.validate_config
   would refuse, so the user gets a clean usage error instead of an
   Invalid_argument backtrace from deep inside the simulator. *)
let bounded_int_conv ~min name =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | None -> Error (`Msg (Printf.sprintf "%s must be an integer, got %S" name s))
        | Some n when n < min ->
          Error (`Msg (Printf.sprintf "%s must be >= %d (got %d)" name min n))
        | Some n -> Ok n),
      Format.pp_print_int )

let positive_conv name = bounded_int_conv ~min:1 name
let nonneg_conv name = bounded_int_conv ~min:0 name

let workload_conv =
  Arg.conv
    ( (fun s ->
        match Workloads.find s with
        | Some w -> Ok w
        | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown workload %S (try `gcsim list')" s))),
      fun ppf w -> Format.pp_print_string ppf w.Workloads.name )

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to collect.")

(* [run] alone can omit the workload: a snapshot given to --resume-from
   records it. The requirement is re-imposed in code for every other
   path. *)
let workload_opt_arg =
  Arg.(
    value
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME"
        ~doc:
          "Workload to collect (optional with $(b,--resume-from): the \
           snapshot records it).")

let cores_arg =
  Arg.(value & opt int 8 & info [ "n"; "cores" ] ~doc:"Number of GC cores.")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Workload size multiplier.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload random seed.")

let latency_arg =
  Arg.(
    value
    & opt (nonneg_conv "extra latency") 0
    & info [ "extra-latency" ]
        ~doc:"Extra cycles added to every memory access (paper Fig. 6 uses 20).")

let fifo_arg =
  Arg.(
    value
    & opt (positive_conv "FIFO capacity") Memsys.default_config.Memsys.fifo_capacity
    & info [ "fifo" ] ~doc:"Header FIFO capacity in entries.")

let bandwidth_arg =
  Arg.(
    value
    & opt (positive_conv "bandwidth") Memsys.default_config.Memsys.bandwidth
    & info [ "bandwidth" ] ~doc:"Memory transactions accepted per cycle.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ] ~doc:"Check heap invariants after each collection.")

let scan_unit_arg =
  Arg.(
    value & opt int 0
    & info [ "scan-unit" ]
        ~doc:
          "Sub-object work distribution (paper Section VII): hand out \
           objects bigger than N body words in N-word pieces. 0 disables.")

let header_cache_arg =
  Arg.(
    value
    & opt (nonneg_conv "header cache size") 0
    & info [ "header-cache" ]
        ~doc:
          "On-chip header cache entries (paper Section VII). 0 disables.")

let mem_config extra_latency fifo bandwidth header_cache =
  let c =
    {
      Memsys.default_config with
      Memsys.fifo_capacity = fifo;
      bandwidth;
      header_cache_entries = header_cache;
    }
  in
  let c = Memsys.with_extra_latency c extra_latency in
  (match Memsys.validate_config c with
  | Ok () -> ()
  | Error msg ->
    (* Arg converters above should make this unreachable; belt and braces
       for combinations (e.g. a future latency formula going negative). *)
    Format.eprintf "gcsim: invalid memory configuration: %s@." msg;
    exit 2);
  c

let scan_unit_opt n = if n <= 0 then None else Some n

let no_skip_arg =
  Arg.(
    value & flag
    & info [ "no-skip" ]
        ~doc:
          "Force naive cycle-by-cycle stepping: disables both idle-cycle \
           skipping and event-driven core sleeps. The parity contract is \
           that every statistic and artifact is bit-identical either way \
           (only wall time changes); use this flag to check it on any \
           configuration. Documented alias for $(b,--engine naive).")

(* The three stepping engines (docs/PERFORMANCE.md). [--no-skip] and the
   profile-forces-naive rule predate [--engine] and are kept as
   documented aliases; contradictions exit 2. *)
type engine = Naive | Skip | Compiled

let engine_arg =
  Arg.(
    value
    & opt (some (enum [ ("naive", Naive); ("skip", Skip); ("compiled", Compiled) ]))
        None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Stepping engine: $(b,naive) polls every core every cycle (the \
           parity reference); $(b,skip) (the default) adds event-driven \
           core sleeps and idle-cycle skipping; $(b,compiled) further \
           specializes the per-cycle paths for the plain configuration and \
           retires already-determined memory transactions in batches. All \
           three produce bit-identical statistics, verify results and \
           counters — only wall time and the executed/skipped split \
           differ. $(b,--no-skip) is the documented alias for \
           $(b,--engine naive), and $(b,--profile) implies it unless an \
           engine is named. $(b,--engine compiled) rejects \
           $(b,--sanitize), $(b,--profile), $(b,--par-domains) and \
           $(b,--scan-unit) (exit code 2).")

let resolve_engine ~engine ~no_skip ~profile ~sanitize ~par_domains ~scan_unit =
  let reject what =
    Format.eprintf "gcsim run: %s@." what;
    exit 2
  in
  match engine with
  | None -> if no_skip || profile then Naive else Skip
  | Some Naive -> Naive
  | Some Skip ->
    if no_skip then reject "--engine skip contradicts --no-skip";
    if profile then
      reject "--engine skip contradicts --profile (profiling forces naive \
              stepping so the attribution table sums to executed cycles)";
    Skip
  | Some Compiled ->
    if no_skip then reject "--engine compiled contradicts --no-skip";
    if profile then
      reject "--engine compiled is incompatible with --profile (profiling \
              forces naive stepping; use --engine naive)";
    if sanitize <> Hsgc_sanitizer.Sanitizer.Off then
      reject "--engine compiled is incompatible with --sanitize (the \
              compiled engine resolves the sanitizer hooks away at \
              instantiation; use --engine skip or naive)";
    if par_domains <> None then
      reject "--engine compiled is incompatible with --par-domains (the \
              compiled engine steps the machine on one domain; use \
              --engine skip for the BSP parallel kernel)";
    if scan_unit > 0 then
      reject "--engine compiled is incompatible with --scan-unit \
              (sub-object scanning uses the general engine)";
    Compiled

let jobs_arg =
  Arg.(
    value
    & opt (nonneg_conv "jobs") 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run sweep points on up to $(docv) domains in parallel; 0 (the \
           default) means auto — the runtime's recommended domain count, \
           clamped to the number of points. Output is identical at any \
           value.")

let print_stats (stats : Coprocessor.gc_stats) =
  let total = stats.Coprocessor.total_cycles in
  Printf.printf "total cycles        %d\n" total;
  Printf.printf "kernel              executed=%d skipped=%d (%s of total)\n"
    stats.Coprocessor.executed_cycles stats.Coprocessor.skipped_cycles
    (Table.pct
       (float_of_int stats.Coprocessor.skipped_cycles /. float_of_int total));
  if stats.Coprocessor.wall_seconds > 0.0 then
    Printf.printf "kernel throughput   %.2f Mcycles/s (%.4f s wall)\n"
      (float_of_int total /. stats.Coprocessor.wall_seconds /. 1e6)
      stats.Coprocessor.wall_seconds;
  Printf.printf "root phase cycles   %d\n" stats.Coprocessor.root_cycles;
  Printf.printf "worklist empty      %s\n"
    (Table.pct
       (float_of_int stats.Coprocessor.empty_worklist_cycles /. float_of_int total));
  Printf.printf "live objects        %d\n" stats.Coprocessor.live_objects;
  Printf.printf "live words          %d\n" stats.Coprocessor.live_words;
  Printf.printf "header FIFO         hits=%d misses=%d overflows=%d\n"
    stats.Coprocessor.fifo_hits stats.Coprocessor.fifo_misses
    stats.Coprocessor.fifo_overflows;
  if stats.Coprocessor.header_cache_hits + stats.Coprocessor.header_cache_misses > 0
  then
    Printf.printf "header cache        hits=%d misses=%d\n"
      stats.Coprocessor.header_cache_hits stats.Coprocessor.header_cache_misses;
  Printf.printf "memory              loads=%d stores=%d bw-rejects=%d order-holds=%d\n"
    stats.Coprocessor.mem_loads stats.Coprocessor.mem_stores
    stats.Coprocessor.mem_rejected_bandwidth stats.Coprocessor.mem_rejected_order;
  let mean = Coprocessor.stalls_mean_per_core stats in
  print_endline "stalls (mean per core):";
  List.iter
    (fun s ->
      Printf.printf "  %-20s %s\n" (Counters.stall_name s)
        (Table.count_with_pct ~total (Counters.get mean s)))
    Counters.all_stalls

let list_cmd =
  let run () =
    List.iter
      (fun w -> Printf.printf "%-9s %s\n" w.Workloads.name w.Workloads.description)
      Workloads.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"list available workloads") Term.(const run $ const ())

let cycle_budget_arg =
  Arg.(
    value
    & opt (some (positive_conv "cycle budget")) None
    & info [ "cycle-budget" ] ~docv:"CYCLES"
        ~doc:
          "Abort with a full machine dump (exit code 4) if the collection \
           has not finished after $(docv) simulated cycles.")

(* Crash-safe run path: --checkpoint-every/--checkpoint-dir/--resume-from
   route the collection through the Resume driver, which steps the same
   machine with every step horizon-capped at the next checkpoint
   boundary (snapshots land exactly on multiples of the period) and can
   rebuild a machine from any snapshot. SIGINT/SIGTERM write a final
   checkpoint and exit 130/143; a corrupt or incompatible snapshot on
   resume exits with [exit_snapshot]. *)
let require_workload = function
  | Some w -> w
  | None ->
    Format.eprintf
      "gcsim run: required option --workload is missing (only --resume-from \
       can omit it: the snapshot records the workload)@.";
    exit 2

let run_with_checkpoints ~workload ~n_cores ~scale ~seed ~mem ~scan_unit
    ~verify ~engine ~cycle_budget ~profile ~par_domains ~span_timeout
    ~ckpt_every ~ckpt_dir ~resume_from =
  (match (ckpt_every, ckpt_dir) with
  | Some _, None ->
    Format.eprintf "gcsim run: --checkpoint-every needs --checkpoint-dir@.";
    exit 2
  | None, Some _ ->
    Format.eprintf "gcsim run: --checkpoint-dir needs --checkpoint-every@.";
    exit 2
  | _ -> ());
  (match ckpt_dir with
  | Some d when not (Sys.file_exists d) -> Sys.mkdir d 0o755
  | _ -> ());
  let resumed =
    match resume_from with
    | None -> None
    | Some path -> (
      match Resume.resume ~path () with
      | r -> Some r
      | exception Checkpoint.Corrupt msg ->
        Format.eprintf "gcsim run: cannot resume from %s: %s@." path msg;
        exit exit_snapshot)
  in
  let sim, cfg, meta, heap, pre, prof =
    match resumed with
    | Some r ->
      Printf.printf "resumed workload %s at cycle %d from %s\n"
        r.Resume.meta.Resume.workload
        (Coprocessor.now r.Resume.sim)
        (Option.get resume_from);
      (r.Resume.sim, r.Resume.cfg, r.Resume.meta, r.Resume.heap, r.Resume.pre,
       r.Resume.prof)
    | None ->
      let workload = require_workload workload in
      let heap = Workloads.build_heap ~scale ~seed workload in
      let pre = Verify.snapshot heap in
      let prof =
        if profile then begin
          let p = Profiler.create ~n_cores () in
          Profiler.enable p;
          Some p
        end
        else None
      in
      let cfg =
        Coprocessor.config ~mem
          ?scan_unit:(scan_unit_opt scan_unit)
          ?cycle_budget ~skip:(engine <> Naive)
          ~compiled:(engine = Compiled) ~n_cores ()
      in
      let meta =
        {
          Resume.workload = workload.Workloads.name;
          scale;
          seed;
          partitions = 1;
          obs_on = false;
          obs_capacity = 0;
          obs_interval = 0;
          prof_on = profile;
        }
      in
      (Coprocessor.start ?prof cfg heap, cfg, meta, heap, pre, prof)
  in
  let eff_cores = cfg.Coprocessor.n_cores in
  (match par_domains with
  | None -> ()
  | Some p -> (
    match Partition.validate ~n_cores:eff_cores ~n_partitions:p with
    | Ok () -> ()
    | Error msg ->
      Format.eprintf "gcsim run: --par-domains: %s@." msg;
      exit 2));
  let partitions =
    (* The compiled engine steps the machine on one domain (its batched
       segments subsume the BSP exclusive spans); naive stepping keeps
       every core due every cycle, degenerating BSP to leader-only. *)
    if (not cfg.Coprocessor.skip) || cfg.Coprocessor.compiled then 1
    else
      match par_domains with
      | Some p -> p
      | None -> (
        match resumed with
        | Some r -> r.Resume.meta.Resume.partitions
        | None -> Partition.default_partitions ~n_cores:eff_cores)
  in
  let meta = { meta with Resume.partitions } in
  (* A signal ends the run at the next cycle boundary with a final
     checkpoint, then exits with the conventional 128+signal code. *)
  let stop_signal = ref None in
  let install s =
    try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop_signal := Some s))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  install Sys.sigint;
  install Sys.sigterm;
  match
    Resume.drive ?every:ckpt_every ?dir:ckpt_dir
      ~should_stop:(fun () -> !stop_signal <> None)
      ?span_timeout_s:span_timeout ~partitions ~meta sim
  with
  | exception Coprocessor.Stall_diagnosis d ->
    prerr_endline (Report.stall_diagnosis d);
    (match ckpt_dir with
    | Some dir ->
      Format.eprintf "post-mortem snapshot written to %s@."
        (Filename.concat dir Resume.postmortem_name)
    | None -> ());
    exit_stalled
  | Resume.Stopped { at_cycle; checkpoint } ->
    let terminated = !stop_signal = Some Sys.sigterm in
    Format.eprintf "gcsim run: %s at cycle %d%s@."
      (if terminated then "terminated" else "interrupted")
      at_cycle
      (match checkpoint with
      | Some p -> Printf.sprintf "; checkpoint written to %s" p
      | None -> "");
    if terminated then 143 else 130
  | Resume.Finished (stats, bsp) -> (
    Printf.printf "workload %s, %d cores\n" meta.Resume.workload eff_cores;
    print_stats stats;
    (match bsp with
    | None -> ()
    | Some b ->
      Printf.printf "parallel kernel     %d partitions: %s\n" partitions
        (Format.asprintf "%a" Bsp.pp_stats b);
      (match b.Bsp.degraded with
      | Some reason ->
        Format.eprintf
          "gcsim run: warning: parallel kernel degraded to leader-only \
           stepping: %s@."
          reason
      | None -> ()));
    (match prof with
    | None -> ()
    | Some p ->
      print_newline ();
      print_string (Report.profile_table ~total:stats.Coprocessor.total_cycles p));
    if not verify then 0
    else
      match Verify.check_collection ~pre heap with
      | Ok () ->
        print_endline "verification        OK (graph isomorphic, compacted)";
        0
      | Error f ->
        Format.eprintf "verification FAILED: %a@." Verify.pp_failure f;
        exit_verify_failed)

(* The banked machine is its own run path: every non-default engine or
   observation mode is either meaningless for it (BSP span supervision,
   checkpoints of per-bank machines) or has no banked variant (the
   compiled engine, sub-object scanning, the profiler) — reject them
   up front with a usage error rather than silently ignoring them. *)
let run_banked ~workload ~n_cores ~scale ~seed ~mem ~scan_unit ~verify ~engine
    ~no_skip ~cycle_budget ~sanitize ~profile ~par_domains ~span_timeout
    ~ckpt_every ~ckpt_dir ~resume_from ~bank_quantum =
  let reject msg =
    Format.eprintf "gcsim run: %s@." msg;
    exit 2
  in
  if engine <> None && engine <> Some Skip then
    reject "--banked uses the event-driven engine (only --engine skip is valid)";
  if no_skip then reject "--banked is incompatible with --no-skip";
  if profile then
    reject "--banked is incompatible with --profile (no banked profiler)";
  if scan_unit_opt scan_unit <> None then
    reject "--banked is incompatible with --scan-unit";
  if span_timeout <> None then
    reject "--banked is incompatible with --span-timeout (no BSP spans)";
  if ckpt_every <> None || ckpt_dir <> None || resume_from <> None then
    reject
      "--banked is incompatible with checkpointing (per-bank machines are \
       not snapshottable)";
  let banks =
    match par_domains with
    | Some p -> (
      match Partition.validate_banked ~n_cores ~n_partitions:p with
      | Ok () -> p
      | Error msg -> reject ("--par-domains: " ^ msg))
    | None -> Partition.default_banked_partitions ~n_cores
  in
  let workload = require_workload workload in
  let heap = Workloads.build_heap ~scale ~seed workload in
  let pre = if verify then Some (Verify.snapshot heap) else None in
  let cfg = Coprocessor.config ~mem ?cycle_budget ~sanitize ~n_cores () in
  match Banked.collect ?quantum:bank_quantum ~banks cfg heap with
  | exception Coprocessor.Stall_diagnosis d ->
    prerr_endline (Report.stall_diagnosis d);
    exit_stalled
  | exception Hsgc_sanitizer.Diag.Violation d ->
    Format.eprintf "sanitizer VIOLATION: %s@." (Hsgc_sanitizer.Diag.to_string d);
    exit_sanitizer
  | stats, bstats ->
    Printf.printf "workload %s, %d cores (banked)\n" workload.Workloads.name
      n_cores;
    print_stats stats;
    Format.printf "%a@." Banked.pp_stats bstats;
    if sanitize <> Hsgc_sanitizer.Sanitizer.Off then
      if stats.Coprocessor.sanitizer_findings = [] then
        print_endline "sanitizer           OK (no findings)"
      else
        prerr_endline
          (Report.sanitizer_findings ~total:stats.Coprocessor.sanitizer_total
             stats.Coprocessor.sanitizer_findings);
    if stats.Coprocessor.sanitizer_findings <> [] then exit_sanitizer
    else
      match pre with
      | None -> 0
      | Some pre -> (
        match Verify.check_collection ~pre heap with
        | Ok () ->
          print_endline "verification        OK (graph isomorphic, compacted)";
          0
        | Error f ->
          Format.eprintf "verification FAILED: %a@." Verify.pp_failure f;
          exit_verify_failed)

let run_cmd =
  let run workload n_cores scale seed extra_latency fifo bandwidth header_cache
      scan_unit verify engine no_skip cycle_budget sanitize profile par_domains
      span_timeout ckpt_every ckpt_dir resume_from banked bank_quantum =
    let mem = mem_config extra_latency fifo bandwidth header_cache in
    if banked then
      run_banked ~workload ~n_cores ~scale ~seed ~mem ~scan_unit ~verify
        ~engine ~no_skip ~cycle_budget ~sanitize ~profile ~par_domains
        ~span_timeout ~ckpt_every ~ckpt_dir ~resume_from ~bank_quantum
    else begin
    if bank_quantum <> None then begin
      Format.eprintf "gcsim run: --bank-quantum needs --banked@.";
      exit 2
    end;
    let engine =
      resolve_engine ~engine ~no_skip ~profile ~sanitize ~par_domains ~scan_unit
    in
    if ckpt_every <> None || ckpt_dir <> None || resume_from <> None then begin
      if sanitize <> Hsgc_sanitizer.Sanitizer.Off then begin
        Format.eprintf
          "gcsim run: checkpointing is incompatible with --sanitize (the \
           sanitizer's interned state is process-local)@.";
        exit 2
      end;
      run_with_checkpoints ~workload ~n_cores ~scale ~seed ~mem ~scan_unit
        ~verify ~engine ~cycle_budget ~profile ~par_domains ~span_timeout
        ~ckpt_every ~ckpt_dir ~resume_from
    end
    else
    let workload = require_workload workload in
    let heap = Workloads.build_heap ~scale ~seed workload in
    let pre = if verify then Some (Verify.snapshot heap) else None in
    let prof =
      if profile then begin
        let p = Profiler.create ~n_cores () in
        Profiler.enable p;
        Some p
      end
      else None
    in
    (* --profile forces naive stepping so the printed attribution can be
       read directly against executed cycles (every row sums to them);
       all statistics are bit-identical under any engine by the kernel's
       parity contract, only wall time changes. *)
    let skip = engine <> Naive in
    (* An explicit --par-domains must be a valid partition count for
       this core count even when naive stepping then forces the
       single-partition schedule. *)
    (match par_domains with
    | None -> ()
    | Some p -> (
      match Partition.validate ~n_cores ~n_partitions:p with
      | Ok () -> ()
      | Error msg ->
        Format.eprintf "gcsim run: --par-domains: %s@." msg;
        exit 2));
    let partitions =
      (* Naive stepping keeps every core due every cycle, so the BSP
         schedule would degenerate to leader-only stepping anyway; the
         compiled engine's batched segments subsume the BSP exclusive
         spans. Both take the direct path. *)
      if engine <> Skip then 1
      else
        match par_domains with
        | Some p -> p
        | None -> Partition.default_partitions ~n_cores
    in
    let cfg =
      Coprocessor.config ~mem
        ?scan_unit:(scan_unit_opt scan_unit)
        ?cycle_budget ~sanitize ~skip ~compiled:(engine = Compiled) ~n_cores ()
    in
    let bsp_stats = ref None in
    let collect_once () =
      if partitions <= 1 then Coprocessor.collect ?prof cfg heap
      else begin
        let stats, b =
          Bsp.collect_par ?prof ?span_timeout_s:span_timeout ~partitions cfg
            heap
        in
        bsp_stats := Some b;
        stats
      end
    in
    match collect_once () with
    | exception Coprocessor.Stall_diagnosis d ->
      prerr_endline (Report.stall_diagnosis d);
      exit_stalled
    | exception Hsgc_sanitizer.Diag.Violation d ->
      (* --sanitize=strict aborts the collection at the first finding. *)
      Format.eprintf "sanitizer VIOLATION: %s@." (Hsgc_sanitizer.Diag.to_string d);
      exit_sanitizer
    | stats -> (
      Printf.printf "workload %s, %d cores\n" workload.Workloads.name n_cores;
      print_stats stats;
      (match !bsp_stats with
      | None -> ()
      | Some b ->
        Printf.printf "parallel kernel     %d partitions: %s\n" partitions
          (Format.asprintf "%a" Bsp.pp_stats b);
        (match b.Bsp.degraded with
        | Some reason ->
          Format.eprintf
            "gcsim run: warning: parallel kernel degraded to leader-only \
             stepping: %s@."
            reason
        | None -> ()));
      (match prof with
      | None -> ()
      | Some p ->
        print_newline ();
        print_string
          (Report.profile_table ~total:stats.Coprocessor.total_cycles p));
      if sanitize <> Hsgc_sanitizer.Sanitizer.Off then
        if stats.Coprocessor.sanitizer_findings = [] then
          print_endline "sanitizer           OK (no findings)"
        else begin
          prerr_endline
            (Report.sanitizer_findings ~total:stats.Coprocessor.sanitizer_total
               stats.Coprocessor.sanitizer_findings)
        end;
      if stats.Coprocessor.sanitizer_findings <> [] then exit_sanitizer
      else
        match pre with
        | None -> 0
        | Some pre -> (
          match Verify.check_collection ~pre heap with
          | Ok () ->
            print_endline "verification        OK (graph isomorphic, compacted)";
            0
          | Error f ->
            Format.eprintf "verification FAILED: %a@." Verify.pp_failure f;
            exit_verify_failed))
    end
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach the stall-attribution profiler and print the per-core \
             cycle-accounting table: every simulated cycle of every core \
             lands in exactly one of busy / the seven stall categories / \
             idle, so each row sums to the executed cycle count (naive \
             stepping is forced; statistics are bit-identical either way).")
  in
  let par_domains_arg =
    Arg.(
      value
      & opt (some (positive_conv "par-domains")) None
      & info [ "par-domains" ] ~docv:"N"
          ~doc:
            "Step the machine as $(docv) BSP partitions (one pool lane \
             each). The default is auto: the runtime's recommended domain \
             count clamped to the core count. Every statistic, verify \
             result and trace digest is bit-identical at any value (see \
             docs/PARALLEL.md). Must be between 1 and the core count. \
             Interaction: $(b,--profile) and $(b,--no-skip) force naive \
             stepping, under which every core is due every cycle and the \
             BSP schedule degenerates to leader-only stepping — gcsim \
             takes the direct sequential path there.")
  in
  let span_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "span-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Supervise parallel span dispatch: a worker lane that has not \
             finished its span after $(docv) seconds of wall clock is \
             abandoned (the lane is poisoned) and the run degrades to \
             leader-only stepping with a warning — still completing with \
             bit-identical results — instead of hanging the process.")
  in
  let ckpt_every_arg =
    Arg.(
      value
      & opt (some (positive_conv "checkpoint period")) None
      & info [ "checkpoint-every" ] ~docv:"CYCLES"
          ~doc:
            "Write a crash-safe snapshot of the complete machine state every \
             $(docv) simulated cycles (requires $(b,--checkpoint-dir)). \
             Snapshots are written atomically with per-section CRCs, land \
             exactly on multiples of the period, and perturb nothing but the \
             executed/skipped cycle split. SIGINT/SIGTERM write a final \
             checkpoint and exit 130/143; a watchdog stall leaves a \
             post-mortem snapshot next to the diagnosis. Incompatible with \
             $(b,--sanitize).")
  in
  let ckpt_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Directory for $(b,--checkpoint-every) snapshots (created if \
             missing).")
  in
  let resume_from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume-from" ] ~docv:"FILE"
          ~doc:
            "Resume a collection from a snapshot written by \
             $(b,--checkpoint-every) (or the watchdog post-mortem). The \
             machine configuration, workload, and instrumentation come from \
             the snapshot; a corrupt snapshot or one written by a different \
             build exits with code 6. Combine with the checkpoint flags to \
             keep checkpointing the resumed run.")
  in
  let banked_arg =
    Arg.(
      value & flag
      & info [ "banked" ]
          ~doc:
            "Run the banked variant machine instead of the paper's dense \
             machine: the cores are split into equal banks, each with a \
             private synchronization block over a home range of the heap \
             and a private memory-arbitration lane; banks step \
             concurrently on real domains and cross-bank pointers are \
             routed through a barrier-drained header-FIFO arbitration \
             step. Cycle counts are $(i,not) comparable to the dense \
             machine — collection semantics are (checked by the \
             differential harness; see docs/PARALLEL.md). \
             $(b,--par-domains) selects the bank count (default: auto; \
             must divide the core count, exit code 2 otherwise). \
             Incompatible with $(b,--engine naive/compiled), \
             $(b,--no-skip), $(b,--profile), $(b,--scan-unit), \
             $(b,--span-timeout) and checkpointing.")
  in
  let bank_quantum_arg =
    Arg.(
      value
      & opt (some (positive_conv "bank quantum")) None
      & info [ "bank-quantum" ] ~docv:"STEPS"
          ~doc:
            "Step calls each bank gets per superstep between arbitration \
             barriers (default 512). Any value yields the same final heap \
             and live-set statistics; only the arbitration interleave's \
             cycle accounting shifts. Needs $(b,--banked).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"run one collection and print full statistics")
    Term.(
      const run $ workload_opt_arg $ cores_arg $ scale_arg $ seed_arg
      $ latency_arg $ fifo_arg $ bandwidth_arg $ header_cache_arg
      $ scan_unit_arg $ verify_arg $ engine_arg $ no_skip_arg $ cycle_budget_arg
      $ sanitize_arg $ profile_arg $ par_domains_arg $ span_timeout_arg
      $ ckpt_every_arg $ ckpt_dir_arg $ resume_from_arg $ banked_arg
      $ bank_quantum_arg)

let sweep_cmd =
  let run workload scale seed extra_latency fifo bandwidth header_cache verify
      jobs =
    let mem = mem_config extra_latency fifo bandwidth header_cache in
    let points =
      Experiment.sweep ~verify ~scale ~seeds:[| seed |] ~mem ~jobs workload
    in
    let rows =
      List.map2
        (fun p (_, s) ->
          [
            string_of_int p.Experiment.n_cores;
            Printf.sprintf "%.0f" p.Experiment.cycles;
            Table.fixed 2 s;
            Table.pct p.Experiment.empty_frac;
          ])
        points (Experiment.speedups points)
    in
    Printf.printf "workload %s\n" workload.Workloads.name;
    Table.print ~header:[ "cores"; "cycles"; "speedup"; "worklist empty" ] ~rows;
    0
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"sweep core counts and report speedups")
    Term.(
      const run $ workload_arg $ scale_arg $ seed_arg $ latency_arg $ fifo_arg
      $ bandwidth_arg $ header_cache_arg $ verify_arg $ jobs_arg)

let cycles_cmd =
  let run workload n_cores scale seed gcs churn verify =
    let heap = Workloads.build_heap ~scale ~seed workload in
    let mut = Mutator.create heap (Rng.create (seed + 1)) in
    let cfg = Coprocessor.config ~n_cores () in
    let header = [ "gc"; "cycles"; "live objects"; "live words"; "allocated" ] in
    let rows = ref [] in
    for gc = 1 to gcs do
      (match Mutator.churn mut ~allocs:churn with `Ok | `Heap_full -> ());
      let pre = if verify then Some (Verify.snapshot heap) else None in
      let stats = Coprocessor.collect cfg heap in
      (match pre with
      | Some pre -> (
        match Verify.check_collection ~pre heap with
        | Ok () -> ()
        | Error f ->
          Format.eprintf "gc %d verification FAILED: %a@." gc Verify.pp_failure f;
          exit exit_verify_failed)
      | None -> ());
      rows :=
        [
          string_of_int gc;
          string_of_int stats.Coprocessor.total_cycles;
          string_of_int stats.Coprocessor.live_objects;
          string_of_int stats.Coprocessor.live_words;
          string_of_int (Mutator.allocated mut);
        ]
        :: !rows
    done;
    Printf.printf "workload %s, %d cores, %d GC cycles with mutator churn\n"
      workload.Workloads.name n_cores gcs;
    Table.print ~header ~rows:(List.rev !rows);
    0
  in
  let gcs_arg =
    Arg.(value & opt int 5 & info [ "g"; "gcs" ] ~doc:"Number of GC cycles.")
  in
  let churn_arg =
    Arg.(
      value & opt int 2000
      & info [ "churn" ] ~doc:"Objects the mutator allocates between GCs.")
  in
  Cmd.v
    (Cmd.info "cycles"
       ~doc:"run repeated collections with mutator churn in between")
    Term.(
      const run $ workload_arg $ cores_arg $ scale_arg $ seed_arg $ gcs_arg
      $ churn_arg $ verify_arg)

let trace_cmd =
  let run workload n_cores scale seed interval format out no_skip =
    let heap = Workloads.build_heap ~scale ~seed workload in
    (* Write the artifact to [out] when given, stdout otherwise; status
       lines go to stdout only in the file case so a stdout export stays
       a clean machine-readable stream. *)
    let emit ~what text =
      match out with
      | None -> print_string text
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "%s written to %s\n" what path
    in
    (match format with
    | `Ascii | `Csv ->
      let trace = Trace.create ~interval () in
      let stats =
        Coprocessor.collect ~trace (Coprocessor.config ~n_cores ()) heap
      in
      (match format with
      | `Csv ->
        emit
          ~what:(Printf.sprintf "%d samples (CSV)" (Trace.length trace))
          (Trace.to_csv trace)
      | _ ->
        Printf.printf "workload %s, %d cores, %d cycles, %d live objects\n\n"
          workload.Workloads.name n_cores stats.Coprocessor.total_cycles
          stats.Coprocessor.live_objects;
        emit ~what:"timeline" (Trace.timeline trace))
    | `Perfetto ->
      let obs = Tracer.create ~interval ~n_cores () in
      Tracer.enable obs;
      let stats =
        Coprocessor.collect ~obs
          (Coprocessor.config ~skip:(not no_skip) ~n_cores ())
          heap
      in
      emit
        ~what:
          (Printf.sprintf
             "Chrome trace JSON (%d cycles, %d events, %d dropped, digest %s)"
             stats.Coprocessor.total_cycles (Tracer.length obs)
             (Tracer.dropped obs) (Tracer.digest obs))
        (Perfetto.to_string obs));
    0
  in
  let interval_arg =
    Arg.(
      value & opt int 16
      & info [ "interval" ]
          ~doc:
            "Cycles between samples (signal samples for ascii/csv, counter \
             samples for perfetto).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("ascii", `Ascii); ("csv", `Csv); ("perfetto", `Perfetto) ])
          `Ascii
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,ascii) — activity timeline; $(b,csv) — the \
             sampled signals; $(b,perfetto) — Chrome trace-event JSON of the \
             span tracer (per-core phase and stall tracks, kernel and FIFO \
             tracks, gray-backlog and FIFO-depth counters), loadable at \
             ui.perfetto.dev.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the export to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "collect once while sampling internal signals; print an activity \
          timeline, CSV samples, or a Perfetto trace (the paper's monitoring \
          framework)")
    Term.(
      const run $ workload_arg $ cores_arg $ scale_arg $ seed_arg $ interval_arg
      $ format_arg $ out_arg $ no_skip_arg)

let ablate_cmd =
  let run scale seed =
    (* FIFO capacity on cup: the overflow -> scan-lock-stall mechanism. *)
    print_endline
      "FIFO capacity ablation (cup, 16 cores): smaller FIFOs overflow more,\n\
       lengthening the scan-lock critical section.\n";
    let cup = Option.get (Workloads.find "cup") in
    let rows =
      List.map
        (fun fifo ->
          let mem = { Memsys.default_config with Memsys.fifo_capacity = fifo } in
          let heap = Workloads.build_heap ~scale ~seed cup in
          let s = Coprocessor.collect (Coprocessor.config ~mem ~n_cores:16 ()) heap in
          let mean = Coprocessor.stalls_mean_per_core s in
          [
            string_of_int fifo;
            string_of_int s.Coprocessor.total_cycles;
            string_of_int s.Coprocessor.fifo_overflows;
            Table.count_with_pct ~total:s.Coprocessor.total_cycles
              (Counters.get mean Counters.Scan_lock);
          ])
        [ 128; 1024; 8192; 32768; 131072 ]
    in
    Table.print
      ~header:[ "FIFO entries"; "cycles"; "overflows"; "scan-lock stall" ]
      ~rows;
    print_newline ();
    (* Bandwidth on db at 16 cores: the paper's second limiter. *)
    print_endline
      "Memory bandwidth ablation (db, 16 cores): the second scalability\n\
       limiter the paper identifies.\n";
    let db = Option.get (Workloads.find "db") in
    let base =
      let heap = Workloads.build_heap ~scale ~seed db in
      (Coprocessor.collect (Coprocessor.config ~n_cores:1 ()) heap)
        .Coprocessor.total_cycles
    in
    let rows =
      List.map
        (fun bandwidth ->
          let mem = { Memsys.default_config with Memsys.bandwidth } in
          let heap = Workloads.build_heap ~scale ~seed db in
          let s = Coprocessor.collect (Coprocessor.config ~mem ~n_cores:16 ()) heap in
          [
            string_of_int bandwidth;
            string_of_int s.Coprocessor.total_cycles;
            Printf.sprintf "%.2fx"
              (float_of_int base /. float_of_int s.Coprocessor.total_cycles);
            string_of_int s.Coprocessor.mem_rejected_bandwidth;
          ])
        [ 1; 2; 4; 8; 16 ]
    in
    Table.print
      ~header:
        [ "words/cycle"; "cycles @16 cores"; "speedup vs 1 core"; "bw rejections" ]
      ~rows;
    0
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"sweep the design parameters DESIGN.md calls out (FIFO, bandwidth)")
    Term.(const run $ scale_arg $ seed_arg)

let concurrent_cmd =
  let run workload n_cores scale seed period alloc_percent =
    let heap = Workloads.build_heap ~scale ~seed workload in
    let orig_roots = Array.length heap.Hsgc_heap.Heap.roots in
    let pre = Verify.snapshot heap in
    let cfg =
      {
        (Concurrent.default_config ~n_cores ()) with
        Concurrent.mutator_period = period;
        alloc_percent;
        seed;
      }
    in
    let stats = Concurrent.collect cfg heap in
    let all = heap.Hsgc_heap.Heap.roots in
    Hsgc_heap.Heap.set_roots heap (Array.sub all 0 orig_roots);
    let iso = Verify.equal_snapshot pre (Verify.snapshot heap) in
    Hsgc_heap.Heap.set_roots heap all;
    Printf.printf "workload %s, %d cores, mutator op every %d cycles\n"
      workload.Workloads.name n_cores period;
    Printf.printf "pause (root phase)    %d cycles\n" stats.Concurrent.pause_cycles;
    Printf.printf "whole cycle           %d cycles\n"
      stats.Concurrent.gc.Coprocessor.total_cycles;
    Printf.printf "mutator ops during GC %d reads, %d allocations\n"
      stats.Concurrent.mutator_reads stats.Concurrent.mutator_allocs;
    Printf.printf "read-barrier evacs    %d\n" stats.Concurrent.barrier_evacuations;
    Printf.printf "mutator lock waits    %d cycles\n"
      stats.Concurrent.mutator_wait_cycles;
    let space_ok = Verify.check_space heap = Ok () in
    let new_ok = Concurrent.check_new_objects heap stats = Ok () in
    Printf.printf "verified              old graph %s, space %s, new objects %s\n"
      (if iso then "isomorphic" else "CORRUPT")
      (if space_ok then "well-formed" else "CORRUPT")
      (if new_ok then "intact" else "CORRUPT");
    if iso && space_ok && new_ok then 0 else exit_verify_failed
  in
  let period_arg =
    Arg.(
      value & opt int 4
      & info [ "period" ] ~doc:"Coprocessor cycles between mutator operations.")
  in
  let alloc_arg =
    Arg.(
      value & opt int 30
      & info [ "alloc-percent" ] ~doc:"Share of mutator operations that allocate.")
  in
  Cmd.v
    (Cmd.info "concurrent"
       ~doc:"collect while the main processor keeps running (Section VII next step)")
    Term.(
      const run $ workload_arg $ cores_arg $ scale_arg $ seed_arg $ period_arg
      $ alloc_arg)

let chaos_cmd =
  let run workload cores scale seed jobs retries json_out interrupt =
    let workloads = Option.map (fun w -> [ w.Workloads.name ]) workload in
    if interrupt then begin
      let points =
        Chaos.Interrupt.default_matrix ?workloads ~cores:[ cores ] ~seed ()
      in
      let jobs = Domain_pool.resolve_jobs ~limit:(List.length points) jobs in
      Printf.printf "interrupt campaign: %d points (%d jobs)\n\n%!"
        (List.length points) jobs;
      let s = Chaos.Interrupt.run ~scale ~jobs points in
      print_string (Chaos.Interrupt.render s);
      (match json_out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Chaos.Interrupt.to_json s);
        output_char oc '\n';
        close_out oc;
        Printf.printf "\nJSON written to %s\n" path);
      if Chaos.Interrupt.passed s then 0 else exit_verify_failed
    end
    else
    let points = Chaos.default_matrix ?workloads ~cores:[ cores ] ~seed () in
    let jobs = Domain_pool.resolve_jobs ~limit:(List.length points) jobs in
    Printf.printf "chaos campaign: %d points (%d jobs, %d retries per point)\n\n%!"
      (List.length points) jobs retries;
    let summary =
      Chaos.run ~scale ~jobs
        ~on_error:(if retries > 0 then Hsgc_sim.Domain_pool.Retry retries
                   else Hsgc_sim.Domain_pool.Skip)
        points
    in
    print_string (Chaos.render summary);
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Chaos.to_json summary);
      close_out oc;
      Printf.printf "\nJSON written to %s\n" path);
    let silent = summary.Chaos.corruption_silent > 0 in
    let hung = summary.Chaos.delay_terminated < summary.Chaos.delay_points in
    let unclean = summary.Chaos.delay_clean < summary.Chaos.delay_points in
    if silent || unclean then exit_verify_failed
    else if hung then exit_stalled
    else 0
  in
  let workload_opt_arg =
    Arg.(
      value
      & opt (some workload_conv) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"Restrict the campaign to one workload (default: all).")
  in
  let retries_arg =
    Arg.(
      value
      & opt (nonneg_conv "retries") 0
      & info [ "retries" ]
          ~doc:
            "Re-run a crashed campaign point up to this many times with a \
             deterministically reseeded fault plan before recording it.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "json" ] ~docv:"FILE"
          ~doc:"Also write the campaign summary as JSON.")
  in
  let interrupt_arg =
    Arg.(
      value & flag
      & info [ "interrupt" ]
          ~doc:
            "Run the interrupt campaign instead of the fault matrix: kill a \
             checkpointing run at a deterministic random cycle, resume from \
             the latest snapshot, and demand the resumed final state (verify \
             result, cycle count, per-core counters, trace digest) is \
             identical to an uninterrupted run's; also flip one byte per \
             snapshot section and demand every flip is refused by its CRC. \
             Exits 3 unless both rates are 100%.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "run the fault-injection campaign matrix (fault class x intensity x \
          workload) and report termination, detection, and overhead rates")
    Term.(
      const run $ workload_opt_arg $ cores_arg $ scale_arg $ seed_arg $ jobs_arg
      $ retries_arg $ json_arg $ interrupt_arg)

let bench_cmd =
  let run scale seed out check quiet =
    let progress (l : Perf.leg) =
      if not quiet then
        Printf.printf "  %-9s %2d cores  %9d cycles  %5.1f%% skipped  %7.2f \
                       Mcycles/s\n%!"
          l.Perf.workload l.Perf.n_cores l.Perf.cycles
          (100.0 *. float_of_int l.Perf.skipped /. float_of_int (max 1 l.Perf.cycles))
          (float_of_int l.Perf.cycles /. Float.max 1e-9 l.Perf.skip_wall_s /. 1e6)
    in
    match Perf.run ~scale ~seed ~progress () with
    | exception Perf.Perf_regression msg ->
      Format.eprintf "gcsim bench: %s@." msg;
      exit_verify_failed
    | suite -> (
      print_newline ();
      print_endline (Perf.summary suite);
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Perf.to_json suite);
        close_out oc;
        Printf.printf "wrote %s\n" path);
      match check with
      | None -> 0
      | Some path -> (
        let ic = open_in path in
        let baseline = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Perf.check ~baseline suite with
        | Ok () ->
          Printf.printf "perf smoke vs %s: OK\n" path;
          0
        | Error msgs ->
          List.iter (fun m -> Format.eprintf "gcsim bench: %s@." m) msgs;
          exit_verify_failed))
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "json" ] ~docv:"FILE"
          ~doc:"Write the suite as JSON (the tracked BENCH_sim.json artifact).")
  in
  let check_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "Compare against a committed BENCH_sim.json and fail (exit code 3) \
             on a >20% regression of any host-independent metric: skipped \
             fraction, minor words per cycle, latency-bound skip speedup, the \
             BSP kernel's exclusive-span fraction, and the banked machine's \
             modeled-cycle ratio and remote-request fraction. Absolute \
             Mcycles/s and the wall-clock speedups are never gated — they \
             depend on the host (the banked self-speedup floor arms only on \
             hosts with at least 4 recommended domains).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-leg progress.")
  in
  let bench_scale_arg =
    Arg.(
      value & opt float 0.5
      & info [ "scale" ]
          ~doc:
            "Workload size multiplier (default 0.5, matching the committed \
             baseline — the skipped fractions are only comparable at equal \
             scale).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "time the stepping loop on prebuilt heaps (sim-only wall) across the \
          fig5 grid, naive vs event-driven, at base and +20-cycle memory \
          latency")
    Term.(const run $ bench_scale_arg $ seed_arg $ out_arg $ check_arg $ quiet_arg)

(* gcsim model — the bounded model checker over the abstracted
   hardware-sync protocol (lib/model, docs/MODELCHECK.md). Single-run
   mode explores one (graph, cores, mutation) configuration; --matrix
   runs the full tracked suite behind BENCH_model.json. *)
let model_cmd =
  let module Proto = Hsgc_model.Proto in
  let module Explore = Hsgc_model.Explore in
  let module Replay = Hsgc_model.Replay in
  let module Mutation = Hsgc_model.Mutation in
  let module MBench = Hsgc_model.Bench in
  let run cores graph_name objects mutation_name list_mutations no_por
      no_symmetry max_states matrix out check quiet =
    if list_mutations then begin
      List.iter
        (fun (e : Mutation.entry) ->
          Printf.printf "%-26s @%-8s %-17s %s\n" e.Mutation.name
            e.Mutation.graph
            (Proto.check_name e.Mutation.model_check)
            e.Mutation.blurb)
        Mutation.all;
      0
    end
    else if matrix then begin
      let progress = if quiet then None else Some print_endline in
      let s = MBench.run ?progress () in
      if not quiet then print_newline ();
      print_string (MBench.summary s);
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (MBench.to_json s);
        close_out oc;
        Printf.printf "wrote %s\n" path);
      match check with
      | None -> if MBench.all_ok s then 0 else exit_sanitizer
      | Some path -> (
        let ic = open_in path in
        let baseline = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match MBench.check ~baseline s with
        | Ok () ->
          Printf.printf "model matrix vs %s: OK\n" path;
          0
        | Error msgs ->
          List.iter (fun m -> Format.eprintf "gcsim model: %s@." m) msgs;
          exit_verify_failed)
    end
    else begin
      let mutation, entry =
        match mutation_name with
        | None -> (Proto.Correct, None)
        | Some name -> (
          match Mutation.find name with
          | Some e -> (e.Mutation.mutation, Some e)
          | None ->
            Format.eprintf
              "gcsim model: unknown mutation %S (try --list-mutations)@." name;
            exit 2)
      in
      match Proto.graph_of_string graph_name ~objects with
      | Error msg ->
        Format.eprintf "gcsim model: %s@." msg;
        2
      | Ok graph ->
        let cfg =
          {
            (Explore.default_config ~graph ~n_cores:cores) with
            Explore.mutation;
            por = not no_por;
            symmetry = not no_symmetry;
            max_states;
          }
        in
        let outcome = Explore.run cfg in
        let s = Explore.outcome_stats outcome in
        Printf.printf
          "%s  %d cores  %s%s\n\
           %d states, %d transitions (%d slept), depth %d, %d final\n"
          graph.Proto.gname cores
          (match mutation_name with
          | None -> "correct protocol"
          | Some m -> "mutation: " ^ m)
          ((match (cfg.Explore.por, cfg.Explore.symmetry) with
           | true, true -> ""
           | false, true -> "  [no por]"
           | true, false -> "  [no symmetry]"
           | false, false -> "  [no reductions]")
          ^ if Proto.symmetric mutation then "" else "  [asymmetric]")
          s.Explore.states s.Explore.transitions s.Explore.slept
          s.Explore.max_depth s.Explore.finals;
        let replay_and_report sched =
          Printf.printf "counterexample (%d sync-block operations):\n"
            (List.length sched);
          Explore.pp_schedule Format.std_formatter sched;
          Format.pp_print_flush Format.std_formatter ();
          let res = Replay.run cfg sched in
          Printf.printf "replay through sync block + sanitizer: %s\n"
            (if res.Replay.flagged then
               "flagged [" ^ String.concat ", " res.Replay.checks ^ "]"
             else "silent");
          (match entry with
          | Some { Mutation.dynamic_check = Some expected; _ } ->
            Printf.printf "expected dynamic check %s: %s\n"
              (Hsgc_sanitizer.Diag.check_name expected)
              (if Replay.hits res expected then "confirmed" else "NOT FLAGGED")
          | _ -> ())
        in
        (match outcome with
        | Explore.Verified _ ->
          Printf.printf "verified: every interleaving satisfies the protocol\n"
        | Explore.Violation (v, sched, _) ->
          Printf.printf "VIOLATION %s: %s\n"
            (Proto.check_name v.Proto.vcheck)
            v.Proto.vdetail;
          replay_and_report sched
        | Explore.Deadlock (sched, _) ->
          Printf.printf "DEADLOCK: no core can make progress\n";
          Printf.printf "schedule (%d sync-block operations):\n"
            (List.length sched);
          Explore.pp_schedule Format.std_formatter sched;
          Format.pp_print_flush Format.std_formatter ()
        | Explore.Livelock (sched, _) ->
          Printf.printf
            "LIVELOCK: quiescence unreachable from the state below\n";
          Printf.printf "schedule (%d sync-block operations):\n"
            (List.length sched);
          Explore.pp_schedule Format.std_formatter sched;
          Format.pp_print_flush Format.std_formatter ()
        | Explore.Out_of_bounds _ ->
          Printf.printf "inconclusive: state bound %d exhausted\n"
            cfg.Explore.max_states);
        (match outcome with
        | Explore.Verified _ -> 0
        | Explore.Out_of_bounds _ -> exit_stalled
        | Explore.Violation _ | Explore.Deadlock _ | Explore.Livelock _ ->
          exit_sanitizer)
    end
  in
  let cores_arg =
    Arg.(
      value
      & opt (positive_conv "cores") 3
      & info [ "n"; "cores" ] ~doc:"Model cores to interleave (default 3).")
  in
  let graph_arg =
    Arg.(
      value & opt string "diamond"
      & info [ "g"; "graph" ] ~docv:"NAME"
          ~doc:
            "Object graph topology: $(b,diamond) (two roots share all \
             children — the evacuation race), $(b,chain), $(b,fork), \
             $(b,twin) (disjoint children — concurrent claims), \
             $(b,garbage) (one unreachable object).")
  in
  let objects_arg =
    Arg.(
      value
      & opt (positive_conv "objects") 4
      & info [ "objects" ] ~doc:"Objects in the graph (default 4).")
  in
  let mutation_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "m"; "mutation" ] ~docv:"NAME"
          ~doc:
            "Model-check a broken-collector variant instead of the correct \
             protocol (see $(b,--list-mutations)); expect a counterexample.")
  in
  let list_mutations_arg =
    Arg.(
      value & flag
      & info [ "list-mutations" ] ~doc:"List the mutation catalog and exit.")
  in
  let no_por_arg =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "Disable partial-order reduction (sleep sets); the search walks \
             every transition and counterexamples are minimal (BFS).")
  in
  let no_symmetry_arg =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:
            "Disable core-symmetry reduction (canonical visited-state keys).")
  in
  let max_states_arg =
    Arg.(
      value
      & opt (positive_conv "state bound") 2_000_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Exploration bound; exceeding it exits 4 (inconclusive, not \
             verified).")
  in
  let matrix_arg =
    Arg.(
      value & flag
      & info [ "matrix" ]
          ~doc:
            "Run the full tracked suite (verification grid, reduction \
             cross-validation, silent baseline replay, mutation catalog) \
             instead of a single configuration.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "json" ] ~docv:"FILE"
          ~doc:
            "With $(b,--matrix): write the suite as JSON (the tracked \
             BENCH_model.json artifact).")
  in
  let check_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "With $(b,--matrix): compare against a committed \
             BENCH_model.json and fail (exit code 3) on any gate drift. \
             Exploration is deterministic, so state counts and verdicts \
             must match exactly.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress lines.")
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "bounded model checker for the hardware-sync protocol: exhaustively \
          verify every core interleaving of an abstracted collector \
          microprogram (exit 5 on violation/deadlock/livelock, 4 if the \
          state bound is hit), with counterexample replay through the real \
          sync block and sanitizer")
    Term.(
      const run $ cores_arg $ graph_arg $ objects_arg $ mutation_arg
      $ list_mutations_arg $ no_por_arg $ no_symmetry_arg $ max_states_arg
      $ matrix_arg $ out_arg $ check_arg $ quiet_arg)

let () =
  let doc = "fine-grained parallel compacting GC coprocessor simulator" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "gcsim" ~doc)
          [
            list_cmd; run_cmd; sweep_cmd; cycles_cmd; trace_cmd; ablate_cmd;
            concurrent_cmd; chaos_cmd; bench_cmd; model_cmd;
          ]))
