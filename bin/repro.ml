(* Regenerate every table and figure of the paper's evaluation section.

   Usage:
     repro                 — everything at the default scale
     repro fig5|table1|table2|fig6|fifo
     repro --scale 0.3 --seeds 3 fig5
     repro --jobs 4 all    — sweep points distributed over 4 domains
     repro kernel          — simulation-kernel benchmark (BENCH_kernel.json)
*)

module Report = Hsgc_core.Report
module Experiment = Hsgc_core.Experiment
module Chaos = Hsgc_core.Chaos
module Memsys = Hsgc_memsim.Memsys
module San = Hsgc_sanitizer.Sanitizer
open Cmdliner

(* Exit codes match gcsim: 5 = the machine sanitizer flagged a protocol
   violation during a sweep run under --sanitize. *)
let exit_sanitizer = 5

type artifact =
  | Fig5
  | Table1
  | Table2
  | Fig6
  | Fifo
  | Heapsize
  | Baselines
  | Future_work
  | Concurrent
  | Kernel
  | Chaos_campaign
  | All

let artifact_name = function
  | Fig5 -> "fig5"
  | Table1 -> "table1"
  | Table2 -> "table2"
  | Fig6 -> "fig6"
  | Fifo -> "fifo"
  | Heapsize -> "heapsize"
  | Baselines -> "baselines"
  | Future_work -> "future-work"
  | Concurrent -> "concurrent"
  | Kernel -> "kernel"
  | Chaos_campaign -> "chaos"
  | All -> "all"

let artifact_of_string = function
  | "fig5" | "figure5" -> Ok Fig5
  | "table1" -> Ok Table1
  | "table2" -> Ok Table2
  | "fig6" | "figure6" -> Ok Fig6
  | "fifo" -> Ok Fifo
  | "heapsize" -> Ok Heapsize
  | "baselines" | "e5" -> Ok Baselines
  | "future-work" | "e7" -> Ok Future_work
  | "concurrent" | "e8" -> Ok Concurrent
  | "kernel" -> Ok Kernel
  | "chaos" -> Ok Chaos_campaign
  | "all" -> Ok All
  | s -> Error (`Msg (Printf.sprintf "unknown artifact %S" s))

let artifact_conv =
  Arg.conv
    (artifact_of_string, fun ppf a -> Format.pp_print_string ppf (artifact_name a))

let sum_cycles data =
  List.fold_left
    (fun acc (_, points) ->
      List.fold_left (fun a p -> a +. p.Experiment.cycles) acc points)
    0.0 data

let sum_skipped data =
  List.fold_left
    (fun acc (_, points) ->
      List.fold_left (fun a p -> a +. p.Experiment.skipped_cycles) acc points)
    0.0 data

(* The kernel benchmark: time the full Figure-5 sweep three ways — naive
   stepping, idle-cycle skipping, skipping plus domain-parallel sweep
   points — check the rendered artifacts are byte-identical, and record
   the wall times in a small JSON file for tracking. A fourth and fifth
   leg repeat naive vs skip on the latency-bound Figure-6 memory (+20
   cycles), where idle-cycle skipping is at its strongest. *)
let run_kernel ~scale ~seeds ~verify ~jobs ~bench_out =
  (* Never oversubscribe: on a single-CPU host extra domains only add
     scheduling noise, so the parallel leg degenerates to jobs = 1. *)
  let par_jobs =
    if jobs > 1 then jobs
    else max 1 (min 4 (Domain.recommended_domain_count ()))
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "kernel benchmark: fig5 sweep at scale %g, %d seed(s)\n%!" scale
    (Array.length seeds);
  let naive, naive_wall =
    timed (fun () -> Report.run_sweeps ~verify ~scale ~seeds ~skip:false ~jobs:1 ())
  in
  Printf.printf "  naive stepping        : %8.3f s\n%!" naive_wall;
  let skip, skip_wall =
    timed (fun () -> Report.run_sweeps ~verify ~scale ~seeds ~skip:true ~jobs:1 ())
  in
  Printf.printf "  idle-cycle skipping   : %8.3f s\n%!" skip_wall;
  let par, par_wall =
    timed (fun () ->
        Report.run_sweeps ~verify ~scale ~seeds ~skip:true ~jobs:par_jobs ())
  in
  Printf.printf "  skipping + %d domains  : %8.3f s\n\n%!" par_jobs par_wall;
  (* End-to-end equivalence and determinism: every rendered artifact must
     be byte-identical across the three runs (wall-clock observability is
     deliberately not part of these artifacts). *)
  let render d = Report.figure5 d ^ Report.table1 d ^ Report.table2 d in
  let r_naive = render naive and r_skip = render skip and r_par = render par in
  if r_naive <> r_skip then begin
    prerr_endline "FAIL: skip-ahead results differ from naive stepping";
    exit 1
  end;
  if r_skip <> r_par then begin
    prerr_endline "FAIL: parallel sweep results differ from sequential";
    exit 1
  end;
  print_endline "artifact equivalence: naive = skip = parallel (byte-identical)";
  print_newline ();
  print_endline (Report.kernel_summary par);
  (* Latency-bound legs: the Figure-6 memory adds 20 cycles to every
     transfer, so cores sleep in long stretches and the skip win is an
     order larger than on the default memory. *)
  let lat_mem = Memsys.with_extra_latency Memsys.default_config 20 in
  let lat_naive, lat_naive_wall =
    timed (fun () ->
        Report.run_sweeps ~verify ~scale ~seeds ~mem:lat_mem ~skip:false ~jobs:1
          ())
  in
  Printf.printf "  latency-bound naive   : %8.3f s\n%!" lat_naive_wall;
  let lat_skip, lat_skip_wall =
    timed (fun () ->
        Report.run_sweeps ~verify ~scale ~seeds ~mem:lat_mem ~skip:true ~jobs:1
          ())
  in
  Printf.printf "  latency-bound skipping: %8.3f s\n%!" lat_skip_wall;
  if render lat_naive <> render lat_skip then begin
    prerr_endline "FAIL: skip-ahead results differ from naive (latency-bound)";
    exit 1
  end;
  print_endline
    "artifact equivalence (latency-bound): naive = skip (byte-identical)";
  print_newline ();
  print_endline (Report.kernel_summary lat_skip);
  let cycles = sum_cycles skip and skipped = sum_skipped skip in
  let lat_cycles = sum_cycles lat_skip and lat_skipped = sum_skipped lat_skip in
  let rate wall = if wall > 0.0 then cycles /. wall /. 1e6 else 0.0 in
  let oc = open_out bench_out in
  Printf.fprintf oc
    {|{
  "benchmark": "hsgc simulation kernel (fig5 sweep)",
  "scale": %g,
  "seeds": %d,
  "jobs": %d,
  "sim_cycles": %.0f,
  "skipped_cycles": %.0f,
  "skipped_frac": %.4f,
  "naive_wall_s": %.4f,
  "skip_wall_s": %.4f,
  "par_wall_s": %.4f,
  "skip_speedup": %.2f,
  "total_speedup": %.2f,
  "naive_mcycles_per_s": %.2f,
  "skip_mcycles_per_s": %.2f,
  "par_mcycles_per_s": %.2f,
  "latency_bound": {
    "extra_latency": 20,
    "sim_cycles": %.0f,
    "skipped_cycles": %.0f,
    "skipped_frac": %.4f,
    "naive_wall_s": %.4f,
    "skip_wall_s": %.4f,
    "skip_speedup": %.2f
  }
}
|}
    scale (Array.length seeds) par_jobs cycles skipped
    (if cycles > 0.0 then skipped /. cycles else 0.0)
    naive_wall skip_wall par_wall
    (naive_wall /. Float.max 1e-9 skip_wall)
    (naive_wall /. Float.max 1e-9 par_wall)
    (rate naive_wall) (rate skip_wall) (rate par_wall) lat_cycles lat_skipped
    (if lat_cycles > 0.0 then lat_skipped /. lat_cycles else 0.0)
    lat_naive_wall lat_skip_wall
    (lat_naive_wall /. Float.max 1e-9 lat_skip_wall);
  close_out oc;
  Printf.printf
    "speedup vs naive: skipping %.2fx, skipping+domains %.2fx, \
     latency-bound skipping %.2fx\n"
    (naive_wall /. Float.max 1e-9 skip_wall)
    (naive_wall /. Float.max 1e-9 par_wall)
    (lat_naive_wall /. Float.max 1e-9 lat_skip_wall);
  Printf.printf "wrote %s\n" bench_out

(* The chaos campaign (docs/ROBUSTNESS.md): the full fault matrix —
   class x intensity x workload — with termination/detection rates as
   the artifact and BENCH_chaos.json as the tracked record. Exit codes
   match gcsim: 3 = a point verified wrong (silent corruption or an
   unclean delay run), 4 = a delay-class point hung. *)
let run_chaos ~scale ~jobs ~retries ~chaos_out =
  let points = Chaos.default_matrix () in
  let cjobs = Hsgc_sim.Domain_pool.resolve_jobs ~limit:(List.length points) jobs in
  Printf.printf "chaos campaign: %d points at scale %g (%d jobs)\n\n%!"
    (List.length points) scale cjobs;
  let on_error =
    if retries > 0 then Hsgc_sim.Domain_pool.Retry retries
    else Hsgc_sim.Domain_pool.Skip
  in
  let summary = Chaos.run ~scale ~jobs:cjobs ~on_error points in
  print_string (Chaos.render summary);
  (* Crash-safety leg: the interrupt campaign (kill at a deterministic
     random cycle, resume from the latest checkpoint, demand resume
     equivalence; flip one byte per snapshot section, demand every flip
     is refused). Recorded under "interrupt" in BENCH_chaos.json and
     gated at 100% on both rates. *)
  let ipoints = Chaos.Interrupt.default_matrix () in
  let ijobs =
    Hsgc_sim.Domain_pool.resolve_jobs ~limit:(List.length ipoints) jobs
  in
  Printf.printf "\ninterrupt campaign: %d points (%d jobs)\n\n%!"
    (List.length ipoints) ijobs;
  let interrupt = Chaos.Interrupt.run ~scale ~jobs:ijobs ipoints in
  print_string (Chaos.Interrupt.render interrupt);
  let oc = open_out chaos_out in
  output_string oc (Chaos.to_json ~interrupt summary);
  close_out oc;
  Printf.printf "wrote %s\n" chaos_out;
  if
    summary.Chaos.corruption_silent > 0
    || summary.Chaos.delay_clean < summary.Chaos.delay_points
    || not (Chaos.Interrupt.passed interrupt)
  then 3
  else if summary.Chaos.delay_terminated < summary.Chaos.delay_points then 4
  else 0

(* Observability run (--trace / --profile): one instrumented collection
   of the Table-II headline configuration — javac at 16 cores — with the
   span tracer and/or the stall-attribution profiler attached. --trace
   writes the Chrome trace-event JSON for ui.perfetto.dev; --profile
   prints the per-core cycle-accounting table (each row sums to the
   simulated cycle count). Runs instead of the artifact sequence. *)
let run_observe ~scale ~seed ~profile ~trace_out =
  let module Workloads = Hsgc_objgraph.Workloads in
  let module Coprocessor = Hsgc_coproc.Coprocessor in
  let module Tracer = Hsgc_obs.Tracer in
  let module Profiler = Hsgc_obs.Profiler in
  let n_cores = 16 in
  let w = Workloads.javac in
  let heap = Workloads.build_heap ~scale ~seed w in
  let obs =
    Option.map
      (fun _ ->
        let t = Tracer.create ~n_cores () in
        Tracer.enable t;
        t)
      trace_out
  in
  let prof =
    if profile then begin
      let p = Profiler.create ~n_cores () in
      Profiler.enable p;
      Some p
    end
    else None
  in
  let stats =
    Coprocessor.collect ?obs ?prof (Coprocessor.config ~n_cores ()) heap
  in
  Printf.printf "observability run: %s, %d cores, %d cycles\n"
    w.Workloads.name n_cores stats.Coprocessor.total_cycles;
  (match prof with
  | None -> ()
  | Some p ->
    print_newline ();
    print_string
      (Report.profile_table ~total:stats.Coprocessor.total_cycles p));
  (match (obs, trace_out) with
  | Some t, Some path ->
    let oc = open_out path in
    Hsgc_obs.Perfetto.to_channel oc t;
    close_out oc;
    Printf.printf "wrote %s (%d events, %d dropped, digest %s)\n" path
      (Tracer.length t) (Tracer.dropped t) (Tracer.digest t)
  | _ -> ());
  0

(* Completed-artifact journal: `repro all` appends each artifact's name
   as it completes, so an interrupted run can be resumed with --resume
   (already-journaled artifacts are skipped, the note goes to stderr so
   stdout stays a clean concatenation of artifacts). The journal is
   deleted once the whole run finishes. *)
let journal_header () =
  Printf.sprintf "# hsgc-journal v1 fingerprint=%s"
    (Hsgc_core.Resume.fingerprint ())

let journal_lines path =
  if Sys.file_exists path then (
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (if line = "" then acc else line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in ic;
    lines)
  else []

let journal_read path =
  List.filter (fun l -> l.[0] <> '#') (journal_lines path)

(* The build fingerprint recorded in the journal's header line, if the
   journal has one (journals written by older builds do not). *)
let journal_fingerprint path =
  match journal_lines path with
  | line :: _ when String.length line > 0 && line.[0] = '#' -> (
    let key = "fingerprint=" in
    match String.index_opt line '=' with
    | Some _ -> (
      let rec find i =
        if i + String.length key > String.length line then None
        else if String.sub line i (String.length key) = key then
          Some (String.sub line
                  (i + String.length key)
                  (String.length line - i - String.length key))
        else find (i + 1)
      in
      find 0)
    | None -> None)
  | _ -> None

(* Each journal entry is flushed and fsynced before the artifact run
   moves on — a crash (or power cut) right after an artifact completes
   cannot lose its journal record, so --resume never repeats work. *)
let journal_append path name =
  let fresh = not (Sys.file_exists path) in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if fresh then output_string oc (journal_header () ^ "\n");
  output_string oc (name ^ "\n");
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc)
   with Unix.Unix_error _ -> ());
  close_out oc

let run artifact scale seeds verify jobs quick sanitize bench_out chaos_out
    retries keep_going resume journal profile trace_out =
  let scale = if quick then scale *. 0.05 else scale in
  if profile || trace_out <> None then
    run_observe ~scale ~seed:42 ~profile ~trace_out
  else begin
  let seeds = Array.init seeds (fun i -> 42 + (1000 * i)) in
  let sanitize = if sanitize then San.Check else San.Off in
  let base_sweep =
    lazy (Report.run_sweeps ~verify ~scale ~seeds ~jobs ~sanitize ())
  in
  let latency_sweep =
    lazy
      (Report.run_sweeps ~verify ~scale ~seeds ~jobs ~sanitize
         ~mem:(Memsys.with_extra_latency Memsys.default_config 20)
         ())
  in
  let emit = function
    | Fig5 -> print_endline (Report.figure5 (Lazy.force base_sweep)); 0
    | Table1 -> print_endline (Report.table1 (Lazy.force base_sweep)); 0
    | Table2 -> print_endline (Report.table2 (Lazy.force base_sweep)); 0
    | Fig6 -> print_endline (Report.figure6 (Lazy.force latency_sweep)); 0
    | Fifo -> print_endline (Report.fifo_summary (Lazy.force base_sweep)); 0
    | Heapsize -> print_endline (Report.heap_size_invariance ~scale ()); 0
    | Baselines -> print_endline (Report.baselines ~scale:(0.2 *. scale) ()); 0
    | Future_work -> print_endline (Report.future_work ~scale ()); 0
    | Concurrent ->
      print_endline (Report.concurrent_pauses ~scale:(0.5 *. scale) ());
      0
    | Kernel ->
      run_kernel ~scale ~seeds ~verify ~jobs ~bench_out;
      0
    | Chaos_campaign -> run_chaos ~scale ~jobs ~retries ~chaos_out
    | All -> assert false
  in
  let guard_sanitizer f =
    match f () with
    | code -> code
    | exception Experiment.Sanitizer_failed msg ->
      Printf.eprintf "repro: sanitizer FAILED:\n%s\n%!" msg;
      exit_sanitizer
  in
  let emit a = guard_sanitizer (fun () -> emit a) in
  match artifact with
  | All ->
    let sequence =
      [ Fig5; Table1; Table2; Fig6; Fifo; Heapsize; Baselines; Future_work;
        Concurrent ]
    in
    let done_already =
      if not resume then []
      else begin
        (* A journal written by a different build records artifacts that
           binary produced — resuming would mix outputs of two builds in
           one artifact set. Refuse; the user reruns from scratch. *)
        (match journal_fingerprint journal with
        | Some fp when fp <> Hsgc_core.Resume.fingerprint () ->
          Printf.eprintf
            "repro: --resume refused: %s was written by a different build \
             (journal fingerprint %s, this binary %s); delete the journal or \
             rerun without --resume\n%!"
            journal fp
            (Hsgc_core.Resume.fingerprint ());
          exit 2
        | _ -> ());
        journal_read journal
      end
    in
    if (not resume) && Sys.file_exists journal then Sys.remove journal;
    let failures = ref [] in
    List.iter
      (fun a ->
        let name = artifact_name a in
        if List.mem name done_already then
          Printf.eprintf "repro: %s already journaled, skipping (--resume)\n%!"
            name
        else
          match emit a with
          | _retcode -> journal_append journal name
          | exception e when keep_going ->
            let msg = Printexc.to_string e in
            Printf.eprintf "repro: artifact %s FAILED: %s (continuing)\n%!" name
              msg;
            failures := (name, msg) :: !failures)
      sequence;
    (match List.rev !failures with
    | [] ->
      if Sys.file_exists journal then Sys.remove journal;
      0
    | fs ->
      (* Partial run: leave the journal for --resume and record what
         broke in a machine-readable manifest next to the artifacts. *)
      let oc = open_out "REPRO_failures.json" in
      Printf.fprintf oc "{\n  \"failed_artifacts\": [\n%s\n  ]\n}\n"
        (String.concat ",\n"
           (List.map
              (fun (name, msg) ->
                Printf.sprintf {|    {"artifact": "%s", "error": "%s"}|} name
                  (String.concat "" (List.map (function
                     | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
                     | c -> String.make 1 c)
                     (List.init (String.length msg) (String.get msg)))))
              fs));
      close_out oc;
      Printf.eprintf
        "repro: %d artifact(s) failed; manifest in REPRO_failures.json, \
         journal kept for --resume\n%!"
        (List.length fs);
      1)
  | a -> emit a
  end

let cmd =
  let artifact =
    Arg.(value & pos 0 artifact_conv All & info [] ~docv:"ARTIFACT")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~doc:"Workload size multiplier (1.0 = paper-like).")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~doc:"Number of random seeds to average over.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Check graph isomorphism after every collection (slower).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "jobs"; "j" ]
          ~doc:
            "Run sweep points on up to this many domains in parallel; 0 \
             (the default) means auto — the runtime's recommended domain \
             count, clamped to the number of points. Output is \
             byte-identical at any value.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shrink workloads 20x (smoke-test scale).")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Attach the machine sanitizer to every collection in the sweep \
             artifacts; any finding aborts with exit code 5.")
  in
  let bench_out =
    Arg.(
      value
      & opt string "BENCH_kernel.json"
      & info [ "bench-out" ]
          ~doc:"Where the kernel benchmark writes its JSON record.")
  in
  let chaos_out =
    Arg.(
      value
      & opt string "BENCH_chaos.json"
      & info [ "chaos-out" ]
          ~doc:"Where the chaos campaign writes its JSON record.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:
            "Chaos campaign: re-run a crashed point up to this many times \
             with a deterministically reseeded fault plan.")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going"; "k" ]
          ~doc:
            "For `all': when one artifact fails, keep producing the rest and \
             write the failures to REPRO_failures.json instead of aborting.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "For `all': skip artifacts recorded in the journal by an earlier \
             interrupted run.")
  in
  let journal =
    Arg.(
      value
      & opt string "repro.journal"
      & info [ "journal" ]
          ~doc:
            "Completed-artifact journal for `all' (written as artifacts \
             finish, deleted when the run completes).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Instead of artifacts: run the Table-II headline configuration \
             (javac, 16 cores) with the stall-attribution profiler attached \
             and print the per-core cycle-accounting table (each row sums to \
             the simulated cycle count). Combines with $(b,--trace).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Instead of artifacts: run the Table-II headline configuration \
             (javac, 16 cores) with the span tracer attached and write the \
             Chrome trace-event JSON to $(docv) (loadable at \
             ui.perfetto.dev). Combines with $(b,--profile).")
  in
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "repro" ~doc)
    Term.(
      const run $ artifact $ scale $ seeds $ verify $ jobs $ quick $ sanitize
      $ bench_out $ chaos_out $ retries $ keep_going $ resume $ journal
      $ profile $ trace_out)

let () = exit (Cmd.eval' cmd)
