(* Regenerate every table and figure of the paper's evaluation section.

   Usage:
     repro                 — everything at the default scale
     repro fig5|table1|table2|fig6|fifo
     repro --scale 0.3 --seeds 3 fig5
*)

module Report = Hsgc_core.Report
module Experiment = Hsgc_core.Experiment
module Memsys = Hsgc_memsim.Memsys
open Cmdliner

type artifact =
  | Fig5
  | Table1
  | Table2
  | Fig6
  | Fifo
  | Heapsize
  | Baselines
  | Future_work
  | Concurrent
  | All

let artifact_of_string = function
  | "fig5" | "figure5" -> Ok Fig5
  | "table1" -> Ok Table1
  | "table2" -> Ok Table2
  | "fig6" | "figure6" -> Ok Fig6
  | "fifo" -> Ok Fifo
  | "heapsize" -> Ok Heapsize
  | "baselines" | "e5" -> Ok Baselines
  | "future-work" | "e7" -> Ok Future_work
  | "concurrent" | "e8" -> Ok Concurrent
  | "all" -> Ok All
  | s -> Error (`Msg (Printf.sprintf "unknown artifact %S" s))

let artifact_conv =
  Arg.conv
    ( artifact_of_string,
      fun ppf a ->
        Format.pp_print_string ppf
          (match a with
          | Fig5 -> "fig5"
          | Table1 -> "table1"
          | Table2 -> "table2"
          | Fig6 -> "fig6"
          | Fifo -> "fifo"
          | Heapsize -> "heapsize"
          | Baselines -> "baselines"
          | Future_work -> "future-work"
          | Concurrent -> "concurrent"
          | All -> "all") )

let run artifact scale seeds verify =
  let seeds = Array.init seeds (fun i -> 42 + (1000 * i)) in
  let base_sweep =
    lazy (Report.run_sweeps ~verify ~scale ~seeds ())
  in
  let latency_sweep =
    lazy
      (Report.run_sweeps ~verify ~scale ~seeds
         ~mem:(Memsys.with_extra_latency Memsys.default_config 20)
         ())
  in
  let emit = function
    | Fig5 -> print_endline (Report.figure5 (Lazy.force base_sweep))
    | Table1 -> print_endline (Report.table1 (Lazy.force base_sweep))
    | Table2 -> print_endline (Report.table2 (Lazy.force base_sweep))
    | Fig6 -> print_endline (Report.figure6 (Lazy.force latency_sweep))
    | Fifo -> print_endline (Report.fifo_summary (Lazy.force base_sweep))
    | Heapsize -> print_endline (Report.heap_size_invariance ~scale ())
    | Baselines -> print_endline (Report.baselines ~scale:(0.2 *. scale) ())
    | Future_work -> print_endline (Report.future_work ~scale ())
    | Concurrent -> print_endline (Report.concurrent_pauses ~scale:(0.5 *. scale) ())
    | All -> assert false
  in
  (match artifact with
  | All ->
    List.iter emit
      [ Fig5; Table1; Table2; Fig6; Fifo; Heapsize; Baselines; Future_work;
        Concurrent ]
  | a -> emit a);
  0

let cmd =
  let artifact =
    Arg.(value & pos 0 artifact_conv All & info [] ~docv:"ARTIFACT")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~doc:"Workload size multiplier (1.0 = paper-like).")
  in
  let seeds =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~doc:"Number of random seeds to average over.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Check graph isomorphism after every collection (slower).")
  in
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v
    (Cmd.info "repro" ~doc)
    Term.(const run $ artifact $ scale $ seeds $ verify)

let () = exit (Cmd.eval' cmd)
