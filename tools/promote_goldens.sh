#!/bin/sh
# Refresh the golden-trace corpus (test/goldens/) after an intentional
# behavior change. Runs the golden suite with HSGC_PROMOTE_GOLDENS set,
# which makes each case rewrite its golden file instead of comparing,
# then re-runs the suite in compare mode to prove the fresh corpus is
# self-consistent. Review the resulting diff before committing: every
# changed fingerprint is a deliberate machine-behavior change.
set -eu
cd "$(dirname "$0")/.."
dune build test/test_main.exe
mkdir -p test/goldens
HSGC_PROMOTE_GOLDENS="$PWD/test/goldens" \
  ./_build/default/test/test_main.exe test golden
./_build/default/test/test_main.exe test golden >/dev/null
echo "golden corpus refreshed in test/goldens/ — review with: git diff test/goldens"
