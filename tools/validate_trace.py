#!/usr/bin/env python3
"""Schema-validate a Chrome trace-event JSON export from `gcsim trace
--format perfetto` (stdlib only, no dependencies).

Checks the JSON-object form and every event against the trace-event
format subset the exporter uses: X (complete) spans with non-negative
ts/dur, C counter samples with integer args, M metadata, the thread
layout (core N / core N waits / kernel / header FIFO), and that both
counter tracks are present. Exits 1 with a message on the first
violation, 0 with a summary otherwise.

Usage: tools/validate_trace.py TRACE.json
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    if "traceEvents" not in doc:
        fail("missing traceEvents")
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        fail(f"bad displayTimeUnit {doc.get('displayTimeUnit')!r}")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is not a non-empty list")

    thread_names = {}
    counters = set()
    spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "C", "M"):
            fail(f"event {i}: unexpected phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"event {i}: missing name")
        if ev.get("pid") != 0:
            fail(f"event {i}: pid is {ev.get('pid')!r}, expected 0")
        if ph == "X":
            spans += 1
            for k in ("ts", "dur", "tid"):
                if not isinstance(ev.get(k), int) or ev[k] < 0:
                    fail(f"event {i} ({ev['name']}): bad {k} {ev.get(k)!r}")
            if not isinstance(ev.get("cat"), str):
                fail(f"event {i} ({ev['name']}): missing cat")
        elif ph == "C":
            counters.add(ev["name"])
            if not isinstance(ev.get("ts"), int) or ev["ts"] < 0:
                fail(f"event {i} ({ev['name']}): bad ts {ev.get('ts')!r}")
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"event {i} ({ev['name']}): counter without args")
            for k, v in args.items():
                if not isinstance(v, int):
                    fail(f"event {i} ({ev['name']}): non-integer value {k}={v!r}")
        elif ev["name"] == "thread_name":
            thread_names[ev.get("tid")] = ev["args"]["name"]

    for want in ("kernel", "header FIFO", "core 0", "core 0 waits"):
        if want not in thread_names.values():
            fail(f"thread {want!r} not declared")
    # A span on an undeclared track would render as an anonymous thread.
    for i, ev in enumerate(events):
        if ev.get("ph") == "X" and ev["tid"] not in thread_names:
            fail(f"event {i} ({ev['name']}): span on undeclared tid {ev['tid']}")
    for want in ("gray backlog", "FIFO depth"):
        if want not in counters:
            fail(f"counter track {want!r} missing")
    if spans == 0:
        fail("no span (X) events at all")

    print(
        f"validate_trace: OK: {len(events)} events, {spans} spans, "
        f"{len(thread_names)} threads, counters: {sorted(counters)}"
    )


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(sys.argv[1])
