#!/usr/bin/env sh
# Source-hygiene lint for the library tree (run via `dune build @lint`).
#
# The library layer must stay free of constructs that undermine the
# simulator's reproducibility and type-safety story:
#
#   Obj.magic          — defeats the type system; none of the shadow-state
#                        tricks in the sanitizer need it.
#   Unix.gettimeofday  — steps backwards under NTP adjustment; all timing
#                        must use the monotonic clock (Hsgc_sim.Kernel,
#                        Monotonic_clock).
#   Printf.printf      — bare stdout formatting from library code bypasses
#                        the Report/Table rendering layer and corrupts
#                        artifact output; only bin/ and test/ may print
#                        directly (Table.print is the one sanctioned
#                        stdout sink).
#
# Exit status: 0 clean, 1 any offender found.

set -u

root="$(dirname "$0")/.."
status=0

ban() {
  pattern="$1"
  why="$2"
  hits=$(grep -rnE "$pattern" "$root/lib" --include='*.ml' --include='*.mli' 2>/dev/null)
  if [ -n "$hits" ]; then
    echo "lint: banned construct in lib/ ($why):" >&2
    echo "$hits" >&2
    status=1
  fi
}

ban 'Obj\.magic' 'Obj.magic defeats the type system'
ban 'Unix\.gettimeofday' 'non-monotonic clock; use Monotonic_clock'
ban 'Printf\.printf' 'bare stdout formatting from library code'

# The cycle-stepped hot-path modules additionally ban closure literals:
# under classic ocamlopt (no flambda) a [fun () -> ...] that captures
# anything heap-allocates at every evaluation, and the compiled engine's
# contract is a zero-allocation stepping loop (gated by the perf suite's
# compiled_words_per_cycle budget). Thunks belong in the setup layer,
# not in per-cycle code.
ban_hot() {
  file="$1"
  hits=$(grep -nE 'fun \(\) ->' "$root/$file" 2>/dev/null)
  if [ -n "$hits" ]; then
    echo "lint: closure literal in hot-path module $file (allocates per evaluation under classic ocamlopt):" >&2
    echo "$hits" >&2
    status=1
  fi
}

ban_hot lib/coproc/coprocessor.ml
ban_hot lib/sim/kernel.ml
ban_hot lib/sim/wake_queue.ml
ban_hot lib/memsim/port.ml
ban_hot lib/memsim/memsys.ml

# Atomics allowlist. Every Atomic.* site in lib/ is shared mutable state
# the model checker (lib/model) and the dynamic sanitizer cannot see:
# the checker verifies interleavings of sync-block operations, and the
# sanitizer's hooks fire on modeled accesses only, so a stray atomic is
# a synchronization channel outside both nets. The domain-parallel
# engines that legitimately need atomics are enumerated below; anything
# else must either route through the sync block or extend the
# model/sanitizer story first (see docs/MODELCHECK.md).
atomics_allowed='^lib/swgc/|^lib/sim/mailbox\.mli?:|^lib/sim/domain_pool\.ml:|^lib/coproc/bsp\.ml:'
atomics_hits=$(cd "$root" && grep -rn 'Atomic\.' lib --include='*.ml' --include='*.mli' 2>/dev/null \
  | grep -vE "($atomics_allowed)")
if [ -n "$atomics_hits" ]; then
  echo "lint: Atomic.* outside the allowlist (invisible to the model checker and sanitizer):" >&2
  echo "$atomics_hits" >&2
  echo "lint: allowed: lib/swgc/, lib/sim/mailbox.ml{,i}, lib/sim/domain_pool.ml, lib/coproc/bsp.ml" >&2
  echo "lint: route new synchronization through the sync block, or extend lib/model + the sanitizer first (docs/MODELCHECK.md)." >&2
  status=1
fi

exit $status
