(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation section, runs the extension experiments, and then
   times the underlying kernels with Bechamel (one Test.make per
   artifact).

     dune exec bench/main.exe                  — everything, paper-like scale
     HSGC_SCALE=0.2 dune exec bench/main.exe   — smaller/faster

   Experiment index (see DESIGN.md):
     E1  Figure 5   speedup vs cores, 8 workloads
     E2  Table I    fraction of cycles with the worklist empty
     E3  Table II   stall-cycle distribution at 16 cores
     E4  Figure 6   speedup with +20-cycle memory latency
     E5  baselines  software schemes vs hardware support (Section III)
     E6  swgc       real OCaml-Domains collector
     E7  ablations  Section VII future work: sub-object units, header cache
     E8  concurrent the coprocessor running while the mutator executes *)

module Report = Hsgc_core.Report
module Experiment = Hsgc_core.Experiment
module Memsys = Hsgc_memsim.Memsys
module Workloads = Hsgc_objgraph.Workloads
module Engine = Hsgc_baselines.Engine
module Parallel_copy = Hsgc_swgc.Parallel_copy
module Par = Hsgc_swgc.Par
module Coprocessor = Hsgc_coproc.Coprocessor
module Verify = Hsgc_heap.Verify
module Tbl = Hsgc_util.Table
open Bechamel
open Toolkit

let scale =
  match Sys.getenv_opt "HSGC_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

(* HSGC_JOBS=4 distributes sweep points over that many domains; every
   artifact is byte-identical at any value. *)
let jobs =
  match Sys.getenv_opt "HSGC_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 1)
  | None -> 1

let rule title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 72 '=') title (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* E1-E4: the paper's figures and tables                               *)
(* ------------------------------------------------------------------ *)

let paper_artifacts () =
  rule
    (Printf.sprintf
       "Reproduction of Horvath & Meyer, ICPP 2010 (workload scale %.2f)" scale);
  let base = Report.run_sweeps ~scale ~jobs () in
  print_endline (Report.figure5 base);
  print_endline (Report.table1 base);
  print_endline (Report.table2 base);
  print_endline (Report.fifo_summary base);
  print_endline (Report.kernel_summary base);
  let slow =
    Report.run_sweeps ~scale ~jobs
      ~mem:(Memsys.with_extra_latency Memsys.default_config 20)
      ()
  in
  print_endline (Report.figure6 slow);
  print_endline (Report.heap_size_invariance ~scale ())

(* ------------------------------------------------------------------ *)
(* E5: software schemes of Section III vs hardware support             *)
(* ------------------------------------------------------------------ *)

let baseline_artifacts () =
  print_string "\n";
  print_endline (Report.baselines ~scale:(0.2 *. scale) ())

(* ------------------------------------------------------------------ *)
(* E6: the real Domains-based collector                                *)
(* ------------------------------------------------------------------ *)

let swgc_artifacts () =
  rule "E6. Real parallel copying collector on OCaml domains";
  Printf.printf
    "Host exposes %d core(s) (Domain.recommended_domain_count); on a\n\
     single-core host extra domains only add contention — the measured\n\
     object is the synchronization cost, not the speedup.\n\n"
    (Domain.recommended_domain_count ());
  let w = Option.get (Workloads.find "db") in
  let header =
    [ "domains"; "live objects"; "time (ms)"; "CAS races"; "verified" ]
  in
  let rows =
    List.map
      (fun domains ->
        let heap = Workloads.build_heap ~scale:(2.0 *. scale) ~seed:7 w in
        let pre = Verify.snapshot heap in
        let s = Parallel_copy.collect ~domains heap in
        let ok =
          match Verify.check_collection ~pre heap with
          | Ok () -> "yes"
          | Error f -> Format.asprintf "NO: %a" Verify.pp_failure f
        in
        [
          string_of_int domains;
          string_of_int s.Parallel_copy.live_objects;
          Printf.sprintf "%.2f" (1000.0 *. s.Parallel_copy.elapsed_s);
          string_of_int s.Parallel_copy.cas_races_lost;
          ok;
        ])
      [ 1; 2; 4; 8 ]
  in
  Tbl.print ~header ~rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E7: the paper's Section VII future-work features, as ablations      *)
(* ------------------------------------------------------------------ *)

module Plan = Hsgc_objgraph.Plan

let future_work_artifacts () =
  print_endline (Report.future_work ~scale ())

(* ------------------------------------------------------------------ *)
(* E8: concurrent collection (the announced next step)                 *)
(* ------------------------------------------------------------------ *)

module Concurrent = Hsgc_coproc.Concurrent
module Heap = Hsgc_heap.Heap

let concurrent_artifacts () =
  print_endline (Report.concurrent_pauses ~scale:(0.5 *. scale) ())

(* ------------------------------------------------------------------ *)
(* Bechamel: one Test.make per artifact                                *)
(* ------------------------------------------------------------------ *)

let bench_scale = 0.05

let fig5_kernel () =
  (* the kernel behind Figure 5: one sweep point (db at 8 cores) *)
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.db in
  Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap

let fig5_kernel_noskip () =
  (* same point with idle-cycle skipping disabled: the pair tracks the
     simulation kernel's own win across revisions *)
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.db in
  Coprocessor.collect (Coprocessor.config ~skip:false ~n_cores:8 ()) heap

let table1_kernel () =
  (* the kernel behind Table I: an empty-worklist-bound workload *)
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.search in
  Coprocessor.collect (Coprocessor.config ~n_cores:8 ()) heap

let table2_kernel () =
  (* the kernel behind Table II: the contention-heavy workload, 16 cores *)
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.javac in
  Coprocessor.collect (Coprocessor.config ~n_cores:16 ()) heap

let fig6_kernel () =
  let mem = Memsys.with_extra_latency Memsys.default_config 20 in
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.db in
  Coprocessor.collect (Coprocessor.config ~mem ~n_cores:8 ()) heap

let baselines_kernel =
  let plan = Workloads.db.Workloads.build ~scale:bench_scale ~seed:42 in
  fun () -> Engine.simulate ~plan ~workers:8 Engine.Work_stealing

let swgc_kernel () =
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.db in
  Parallel_copy.collect ~domains:2 heap

let seq_oracle_kernel () =
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.db in
  Hsgc_core.Cheney_seq.collect heap

let concurrent_kernel () =
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.db in
  Hsgc_coproc.Concurrent.collect
    (Hsgc_coproc.Concurrent.default_config ~n_cores:8 ())
    heap

let subobject_kernel () =
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.compress in
  Coprocessor.collect (Coprocessor.config ~scan_unit:32 ~n_cores:8 ()) heap

let header_cache_kernel () =
  let mem = Memsys.with_header_cache Memsys.default_config 1024 in
  let heap = Workloads.build_heap ~scale:bench_scale ~seed:42 Workloads.javac in
  Coprocessor.collect (Coprocessor.config ~mem ~n_cores:8 ()) heap

let tests =
  Test.make_grouped ~name:"hsgc"
    [
      Test.make ~name:"fig5_scaling" (Staged.stage fig5_kernel);
      Test.make ~name:"fig5_scaling_noskip" (Staged.stage fig5_kernel_noskip);
      Test.make ~name:"table1_empty_worklist" (Staged.stage table1_kernel);
      Test.make ~name:"table2_stalls" (Staged.stage table2_kernel);
      Test.make ~name:"fig6_latency_scaling" (Staged.stage fig6_kernel);
      Test.make ~name:"baselines_compare" (Staged.stage baselines_kernel);
      Test.make ~name:"swgc_domains" (Staged.stage swgc_kernel);
      Test.make ~name:"cheney_seq_oracle" (Staged.stage seq_oracle_kernel);
      Test.make ~name:"subobject_units" (Staged.stage subobject_kernel);
      Test.make ~name:"header_cache" (Staged.stage header_cache_kernel);
      Test.make ~name:"concurrent_cycle" (Staged.stage concurrent_kernel);
    ]

let run_bechamel () =
  rule "Bechamel micro-benchmarks (simulator kernels, reduced scale)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true
      ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let per_run =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      rows := [ name; Printf.sprintf "%.3f ms/run" (per_run /. 1e6) ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  Tbl.print ~header:[ "benchmark"; "monotonic clock" ] ~rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* E9: stepping throughput (the `gcsim bench` perf suite, small scale)  *)
(* ------------------------------------------------------------------ *)

let stepping_throughput () =
  rule
    "E9  Stepping throughput (prebuilt heaps, sim-only wall; `gcsim bench` \
     runs the tracked BENCH_sim.json scale)";
  let suite = Hsgc_core.Perf.run ~scale:(0.2 *. scale) () in
  print_endline (Hsgc_core.Perf.summary suite);
  print_newline ()

let () =
  paper_artifacts ();
  baseline_artifacts ();
  swgc_artifacts ();
  future_work_artifacts ();
  concurrent_artifacts ();
  stepping_throughput ();
  run_bechamel ();
  print_endline "done."
